"""The round-plan IR: builder/validation, fusion analysis, eager-vs-plan
bit-identity on every backend, and trace capture → replay round-trips."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.bench.workloads import Workload
from repro.core.grow import contract_batch, contract_plan
from repro.graph import use_csr
from repro.mpc import (
    LocalBackend,
    MPCEngine,
    PlanBuilder,
    PlanError,
    PlanTrace,
    ProcessBackend,
    ShardedBackend,
    execute_plan,
    parent_local_steps,
    register_transform,
    replay,
)
from repro.mpc.plan import TRANSFORMS, load_trace

SEED = 31
WORKERS = 2


def rng():
    return np.random.default_rng(SEED)


@pytest.fixture(scope="module")
def process_backend():
    backend = ProcessBackend(
        shard_memory=64, workers=WORKERS, min_parallel_items=0
    )
    yield backend
    backend.close()


def contract_inputs(n=40, m=60):
    g = rng()
    labels = np.sort(g.integers(0, 8, n)).astype(np.int64)
    batch = g.integers(0, n, (m, 2)).astype(np.int64)
    return labels, batch


# ---------------------------------------------------------------------------
# Builder + validation
# ---------------------------------------------------------------------------


class TestBuilderAndValidation:
    def test_builder_records_steps_and_outputs(self):
        labels, batch = contract_inputs()
        plan = contract_plan(labels, batch)
        assert plan.name == "contract"
        assert plan.backend_ops() == ["search", "reduce_by_key"]
        assert len(plan.outputs) == 2
        assert plan.validate() is plan

    def test_unknown_transform_rejected(self):
        builder = PlanBuilder("bad")
        with pytest.raises(PlanError):
            builder.transform("zz_never_registered", np.arange(3))

    def test_dangling_output_rejected(self):
        from repro.mpc.plan import RoundPlan, SlotRef

        builder = PlanBuilder("bad")
        builder.search(np.arange(4), np.arange(4))
        with pytest.raises(PlanError):
            builder.build(SlotRef("nowhere"))
        # The dataclass-level validator catches it too.
        with pytest.raises(PlanError):
            RoundPlan(
                name="bad", steps=(), bindings={}, outputs=("ghost",)
            ).validate()

    def test_undefined_input_slot_rejected(self):
        from repro.mpc.plan import OpStep, RoundPlan

        plan = RoundPlan(
            name="bad",
            steps=(OpStep("sort", ("missing",), ("out",)),),
            bindings={},
            outputs=("out",),
        )
        with pytest.raises(PlanError):
            plan.validate()

    def test_duplicate_transform_registration_rejected(self):
        with pytest.raises(ValueError):
            register_transform("canonical_labels")(lambda x: x)
        assert "canonical_labels" in TRANSFORMS

    def test_user_transform_with_declared_arity(self):
        from repro.mpc.plan import _TRANSFORM_ARITY, transform_arity

        name = "zz_test_split_pair"

        @register_transform(name, n_out=2)
        def _split(pairs):
            pairs = np.asarray(pairs).reshape(-1, 2)
            return pairs[:, 0].copy(), pairs[:, 1].copy()

        try:
            assert transform_arity(name) == 2
            builder = PlanBuilder("split")
            left, right = builder.transform(
                name, np.array([1, 2, 3, 4], dtype=np.int64)
            )
            a, b = execute_plan(LocalBackend(), builder.build([left, right]))
            assert a.tolist() == [1, 3] and b.tolist() == [2, 4]
        finally:
            TRANSFORMS.pop(name, None)
            _TRANSFORM_ARITY.pop(name, None)

    def test_transform_arity_mismatch_rejected_at_validate(self):
        from repro.mpc.plan import OpStep, RoundPlan

        plan = RoundPlan(
            name="bad",
            steps=(OpStep(
                "transform", ("in1",), ("a", "b"),
                {"name": "canonical_labels"},
            ),),
            bindings={"in1": np.arange(3)},
            outputs=("a",),
        )
        with pytest.raises(PlanError, match="returns 1"):
            plan.validate()

    def test_invalid_n_out_rejected(self):
        with pytest.raises(ValueError):
            register_transform("zz_bad_arity", n_out=0)

    def test_params_stay_json_scalars(self):
        labels, batch = contract_inputs()
        plan = contract_plan(labels, batch)
        for step in plan.steps:
            json.dumps(step.params)  # must not raise


# ---------------------------------------------------------------------------
# Fusion analysis
# ---------------------------------------------------------------------------


class TestFusionAnalysis:
    def test_contract_plan_pins_the_search(self):
        labels, batch = contract_inputs()
        plan = contract_plan(labels, batch)
        # Step 0 is the search whose output feeds the reduce via the
        # contract_keys transform: parent-local, barrier saved.
        assert parent_local_steps(plan) == {0}

    def test_terminal_ops_keep_their_dispatch(self):
        builder = PlanBuilder("relabel")
        raw = builder.search(np.arange(8), np.arange(8))
        out = builder.transform("canonical_labels", raw)
        plan = builder.build(out)
        assert parent_local_steps(plan) == frozenset()

    def test_single_op_plans_pin_nothing(self):
        builder = PlanBuilder("level")
        outs = builder.min_label_exchange(
            np.arange(6), np.array([0, 1]), np.array([1, 0])
        )
        assert parent_local_steps(builder.build(outs)) == frozenset()

    def test_direct_op_to_op_dependency_is_pinned(self):
        builder = PlanBuilder("chain")
        sorted_ref = builder.sort(np.array([3, 1, 2]))
        builder.search(sorted_ref, np.array([0, 2]))
        plan = builder.build(sorted_ref)
        assert 0 in parent_local_steps(plan)

    def test_process_fuse_toggle_changes_barriers_not_results(
        self, process_backend
    ):
        labels, batch = contract_inputs(n=80, m=600)
        plan = contract_plan(labels, batch)

        process_backend.reset()
        fused = execute_plan(process_backend, plan)
        fused_barriers = process_backend.dispatch_barriers
        fused_counters = (
            process_backend.exchanges, process_backend.bytes_exchanged
        )
        assert process_backend.dispatch_serial_fused == 1
        assert process_backend.plan_barriers["contract"] == fused_barriers

        unfused = ProcessBackend(
            shard_memory=64, workers=WORKERS, min_parallel_items=0,
            fuse_plans=False,
        )
        try:
            eager = execute_plan(unfused, plan)
            assert unfused.dispatch_barriers == fused_barriers + 1
            assert unfused.dispatch_serial_fused == 0
            assert (unfused.exchanges, unfused.bytes_exchanged) == (
                fused_counters
            )
        finally:
            unfused.close()
        for a, b in zip(fused, eager):
            assert np.array_equal(a, b)

    def test_full_pipeline_barriers_strictly_drop(self):
        graph = Workload("permutation_regular", 384, {"degree": 6}).build(SEED)
        runs = {}
        for fused in (True, False):
            backend = ProcessBackend(
                workers=WORKERS, min_parallel_items=0, fuse_plans=fused
            )
            try:
                engine = MPCEngine.for_delta(
                    graph.n + graph.m, CONFIG.delta, backend=backend
                )
                result = repro.mpc_connected_components(
                    graph, 0.1, config=CONFIG, rng=SEED, engine=engine
                )
                stats = backend.stats()
                runs[fused] = (result.labels, result.rounds, stats)
            finally:
                backend.close()
        labels_f, rounds_f, stats_f = runs[True]
        labels_u, rounds_u, stats_u = runs[False]
        assert np.array_equal(labels_f, labels_u)
        assert rounds_f == rounds_u
        assert (stats_f.exchanges, stats_f.bytes_exchanged) == (
            stats_u.exchanges, stats_u.bytes_exchanged
        )
        # The acceptance criterion: plan fusion strictly cuts the
        # pipeline's dispatch barriers (the contract search→reduce pair).
        assert stats_f.dispatch["barriers"] < stats_u.dispatch["barriers"]
        contract_f = stats_f.dispatch["plan_barriers"]["contract"]
        contract_u = stats_u.dispatch["plan_barriers"]["contract"]
        assert contract_f < contract_u


# ---------------------------------------------------------------------------
# Eager vs recorded-then-run_plan bit-identity
# ---------------------------------------------------------------------------


def counters_of(backend):
    stats = backend.stats()
    return (stats.exchanges, stats.bytes_exchanged, stats.shard_count,
            stats.peak_shard_load, stats.op_counts)


#: One legal random op invocation: (op name, positional arrays, params).
def _ops_strategy():
    small = st.integers(min_value=0, max_value=50)
    arr = st.lists(small, min_size=1, max_size=48).map(
        lambda xs: np.asarray(xs, dtype=np.int64)
    )

    def to_search(pair):
        table, raw = pair
        return ("search", (table, raw % table.shape[0]), {})

    def to_reduce(triple):
        keys, values, op = triple
        m = min(keys.shape[0], values.shape[0])
        return ("reduce_by_key", (keys[:m], values[:m]), {"op": op})

    def to_min_label(triple):
        labels, send, recv = triple
        m = min(send.shape[0], recv.shape[0])
        return (
            "min_label_exchange",
            (labels, send[:m] % labels.shape[0], recv[:m] % labels.shape[0]),
            {},
        )

    sort_step = st.tuples(arr, st.booleans()).map(
        lambda pair: ("sort", (pair[0],) if pair[1] else
                      (pair[0], pair[0][::-1].copy()), {})
    )
    return st.lists(
        st.one_of(
            sort_step,
            st.tuples(arr, arr).map(to_search),
            st.tuples(arr, arr, st.sampled_from(["min", "max", "sum"])).map(
                to_reduce
            ),
            st.tuples(arr, arr, arr).map(to_min_label),
        ),
        min_size=1,
        max_size=5,
    )


class TestEagerVsPlanProperty:
    """Any legal op sequence: eager public-op calls vs recording the same
    sequence through a PlanBuilder and executing via run_plan must be
    bit-identical — outputs *and* model counters — on all three backends."""

    @staticmethod
    def _eager(backend, ops):
        outputs = []
        for name, args, params in ops:
            result = getattr(backend, name)(*args, **params)
            outputs.extend(result if isinstance(result, tuple) else (result,))
        return outputs

    @staticmethod
    def _planned(backend, ops):
        builder = PlanBuilder("random-sequence")
        refs = []
        for name, args, params in ops:
            out = getattr(builder, name)(*args, **params)
            refs.extend(out if isinstance(out, tuple) else (out,))
        return list(execute_plan(backend, builder.build(refs)))

    def _check(self, backend, ops):
        backend.reset()
        eager = self._eager(backend, ops)
        eager_counters = counters_of(backend)
        backend.reset()
        planned = self._planned(backend, ops)
        assert counters_of(backend) == eager_counters
        assert len(planned) == len(eager)
        for a, b in zip(eager, planned):
            assert np.array_equal(np.asarray(a), np.asarray(b))

    @settings(max_examples=25, deadline=None)
    @given(ops=_ops_strategy())
    def test_local_and_sharded(self, ops):
        self._check(LocalBackend(), ops)
        self._check(ShardedBackend(shard_memory=16), ops)

    @settings(max_examples=10, deadline=None)
    @given(ops=_ops_strategy())
    def test_process(self, process_backend, ops):
        self._check(process_backend, ops)

    def test_contract_round_matches_eager_calls(self):
        labels, batch = contract_inputs(n=64, m=300)
        reference = contract_batch(labels, batch)  # pure numpy path
        for backend in (
            LocalBackend(),
            ShardedBackend(shard_memory=32),
        ):
            edges, rep = contract_batch(labels, batch, backend=backend)
            assert np.array_equal(edges, reference[0])
            assert np.array_equal(rep, reference[1])
            assert backend.stats().plans == 1


# ---------------------------------------------------------------------------
# Trace capture + replay
# ---------------------------------------------------------------------------


CONFIG = repro.PipelineConfig(
    delta=0.5, expander_degree=4, max_walk_length=32, oversample=4,
    max_phases=2,
)


def capture_pipeline(tmp_path, backend, *, n=256):
    graph = Workload("permutation_regular", n, {"degree": 6}).build(SEED)
    path = tmp_path / "trace.json"
    with MPCEngine.for_delta(
        graph.n + graph.m, CONFIG.delta, backend=backend, trace=str(path)
    ) as engine:
        result = repro.mpc_connected_components(
            graph, 0.1, config=CONFIG, rng=SEED, engine=engine
        )
        captured = engine.backend.stats()
        trace = engine.trace
    return path, result, captured, trace


class TestTraceRoundTrip:
    def test_capture_writes_on_close(self, tmp_path):
        path, result, captured, trace = capture_pipeline(
            tmp_path, ShardedBackend()
        )
        assert path.exists()
        assert len(trace) > 0
        doc = load_trace(path)
        assert doc["backend"] == "sharded"
        assert doc["machine_memory"] == trace.machine_memory
        assert len(doc["plans"]) == captured.plans

    def test_replay_reproduces_labels_and_counters(self, tmp_path):
        path, result, captured, _ = capture_pipeline(
            tmp_path, ShardedBackend()
        )
        for name in ("sharded", "local"):
            replayed = replay(path, backend=name)
            assert replayed.ok
            assert replayed.backend_name == name
            if name == "sharded":
                # Same machine memory => the gated communication counters
                # reproduce exactly.  (shard_count does not: it is peaked
                # by *engine charges* over control-plane data volumes the
                # trace deliberately excludes.)
                assert replayed.stats.exchanges == captured.exchanges
                assert (replayed.stats.bytes_exchanged
                        == captured.bytes_exchanged)
                assert replayed.stats.op_counts == captured.op_counts
        # The broadcast levels' new-label outputs are part of the stream,
        # so a faithful replay reproduces the pipeline's labels exactly:
        # every recorded output matched bit for bit (replayed.ok above).

    def test_replay_on_process_backend(self, tmp_path, process_backend):
        path, result, captured, _ = capture_pipeline(
            tmp_path, ShardedBackend()
        )
        # By name: the fresh backend adopts the trace's machine memory,
        # so its fleet (and therefore the gated counters) match the
        # capture exactly.
        replayed = replay(path, backend="process")
        assert replayed.ok
        assert replayed.stats.exchanges == captured.exchanges
        assert replayed.stats.bytes_exchanged == captured.bytes_exchanged
        # An instance with its own shard memory still replays the outputs
        # bit-identically — counters then describe *its* fleet, not the
        # captured one.
        process_backend.reset()
        also = replay(path, backend=process_backend)
        assert also.ok

    def test_replay_detects_divergence(self, tmp_path):
        path, *_ = capture_pipeline(tmp_path, ShardedBackend())
        doc = json.loads(path.read_text())
        # Corrupt one non-empty recorded result: replay must notice.
        import base64

        arr = None
        for entry in reversed(doc["plans"]):
            for digest in entry["results"]:
                if 0 not in doc["arrays"][digest]["shape"]:
                    arr = doc["arrays"][digest]
                    break
            if arr is not None:
                break
        raw = np.frombuffer(
            base64.b64decode(arr["data"]), dtype=np.dtype(arr["dtype"])
        ).copy()
        raw.ravel()[0] += 1
        arr["data"] = base64.b64encode(raw.tobytes()).decode("ascii")
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="diverged"):
            replay(path, backend="sharded")
        lenient = replay(path, backend="sharded", verify=False)
        assert not lenient.ok
        assert len(lenient.mismatches) >= 1

    def test_trace_schema_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999, "arrays": {}, "plans": []}))
        with pytest.raises(ValueError, match="schema"):
            load_trace(path)

    def test_in_memory_trace_needs_path_to_save(self):
        trace = PlanTrace()
        with pytest.raises(ValueError):
            trace.save()

    def test_unwritable_trace_still_closes_backend(self, tmp_path):
        # close() must release the backend even when the trace save
        # raises (unwritable path): OS resources may not leak behind a
        # reporting failure.
        closed = []

        class Probe(ShardedBackend):
            def close(self):
                closed.append(True)
                super().close()

        target = tmp_path / "dir-not-file"
        target.mkdir()
        engine = MPCEngine(64, backend=Probe(), trace=str(target))
        engine.run_plan(contract_plan(*contract_inputs()))
        with pytest.raises(OSError):
            engine.close()
        assert closed == [True]

    def test_local_capture_replays_on_sharded(self, tmp_path):
        # The accounting-only capture carries enough to certify an
        # enforced backend: the replay seam is backend-agnostic.
        path, result, _, _ = capture_pipeline(tmp_path, LocalBackend())
        replayed = replay(path, backend="sharded")
        assert replayed.ok
        assert replayed.stats.exchanges > 0


# ---------------------------------------------------------------------------
# Trace capture + replay: the CSR plan steps
# ---------------------------------------------------------------------------


def trace_ops(path) -> set:
    doc = load_trace(path)
    return {
        s["op"] for entry in doc["plans"] for s in entry["steps"]
    }


class TestCSRTraceReplay:
    """CSR plan steps must survive the capture → replay round trip on
    every backend: the frozen indptr/indices arrays travel as ordinary
    plan bindings, so a replay reproduces the gather rounds (outputs and
    gated counters) bit for bit."""

    def test_csr_capture_replays_on_all_backends(self, tmp_path):
        with use_csr(True):
            path, result, captured, _ = capture_pipeline(
                tmp_path, ShardedBackend()
            )
        assert "csr_min_label" in trace_ops(path)
        for name in ("sharded", "local", "process", "rpc"):
            replayed = replay(path, backend=name)
            assert replayed.ok, name
            if name != "local":
                # Enforced backends adopt the trace's machine memory, so
                # the gated counters reproduce exactly.
                assert replayed.stats.exchanges == captured.exchanges
                assert (replayed.stats.bytes_exchanged
                        == captured.bytes_exchanged)

    def test_sort_capture_is_csr_free_and_equivalent(self, tmp_path):
        with use_csr(True):
            on_path, on_result, *_ = capture_pipeline(
                tmp_path / "on", ShardedBackend()
            )
        with use_csr(False):
            off_path, off_result, *_ = capture_pipeline(
                tmp_path / "off", ShardedBackend()
            )
        off_ops = trace_ops(off_path)
        assert "csr_min_label" not in off_ops
        assert "min_label_exchange" in off_ops
        assert np.array_equal(on_result.labels, off_result.labels)
        assert on_result.rounds == off_result.rounds
        # The replay toggle is irrelevant: a trace replays the steps it
        # recorded, whichever path captured them.
        with use_csr(False):
            assert replay(on_path, backend="sharded").ok
        with use_csr(True):
            assert replay(off_path, backend="sharded").ok

    def test_liu_tarjan_build_csr_round_trips(self, tmp_path):
        from repro.engines import get_engine

        graph = Workload("permutation_regular", 256, {"degree": 6}).build(
            SEED
        )
        path = tmp_path / "liu-tarjan.json"
        with use_csr(True):
            with MPCEngine.for_delta(
                graph.n + graph.m, CONFIG.delta,
                backend=ShardedBackend(), trace=str(path),
            ) as mpc:
                result = get_engine("liu_tarjan").run(
                    graph, 0.1, config=CONFIG, rng=SEED, mpc=mpc
                )
                captured = mpc.backend.stats()
        doc = load_trace(path)
        transforms = {
            s["params"].get("name")
            for entry in doc["plans"]
            for s in entry["steps"]
            if s["op"] == "transform"
        }
        # The CSR build happens *inside* the captured plan stream, so a
        # replay reconstructs the exact arrays the gathers consumed.
        assert "build_csr" in transforms
        assert "csr_min_label" in trace_ops(path)
        assert result.labels.shape == (graph.n,)
        for name in ("sharded", "process"):
            replayed = replay(path, backend=name)
            assert replayed.ok, name
            assert replayed.stats.exchanges == captured.exchanges
