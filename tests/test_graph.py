"""Tests for the CSR multigraph core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, disjoint_union


def small_triangle():
    return Graph(3, [(0, 1), (1, 2), (2, 0)])


class TestConstruction:
    def test_empty(self):
        g = Graph(4, [])
        assert g.n == 4
        assert g.m == 0
        assert g.max_degree == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 2)])
        with pytest.raises(ValueError):
            Graph(2, [(-1, 0)])

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Graph(3, np.array([[0, 1, 2]]))

    def test_edges_are_readonly(self):
        g = small_triangle()
        with pytest.raises(ValueError):
            g.edges[0, 0] = 5

    def test_input_copy_is_defensive(self):
        edges = np.array([[0, 1]], dtype=np.int64)
        g = Graph(2, edges)
        edges[0, 0] = 1
        assert g.edges[0, 0] == 0


class TestDegreesAndNeighbors:
    def test_triangle_degrees(self):
        g = small_triangle()
        assert list(g.degrees) == [2, 2, 2]

    def test_self_loop_counts_two(self):
        g = Graph(2, [(0, 0), (0, 1)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1
        assert g.self_loop_count == 1

    def test_parallel_edges_counted(self):
        g = Graph(2, [(0, 1), (0, 1), (1, 0)])
        assert g.degree(0) == 3
        assert g.parallel_edge_count == 2

    def test_neighbors_with_multiplicity(self):
        g = Graph(3, [(0, 1), (0, 1), (0, 2)])
        assert sorted(g.neighbors(0).tolist()) == [1, 1, 2]

    def test_port_neighbor(self):
        g = Graph(3, [(0, 1), (0, 2)])
        ports = [g.port_neighbor(0, i) for i in range(g.degree(0))]
        assert sorted(ports) == [1, 2]
        with pytest.raises(IndexError):
            g.port_neighbor(0, 2)

    def test_degree_sum_is_twice_m(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 2), (3, 0)])
        assert int(g.degrees.sum()) == 2 * g.m


class TestTwinSlots:
    def test_twin_is_involution(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3), (2, 2)])
        twins = g.twin_slot
        assert np.array_equal(twins[twins], np.arange(2 * g.m))

    def test_twin_reverses_direction(self):
        g = Graph(4, [(0, 1), (1, 2), (0, 2), (0, 3)])
        indptr, heads, twins = g.indptr, g.heads, g.twin_slot
        # Vertex owning a slot: searchsorted over indptr.
        owner = np.searchsorted(indptr, np.arange(2 * g.m), side="right") - 1
        for s in range(2 * g.m):
            t = twins[s]
            assert heads[s] == owner[t]
            assert heads[t] == owner[s]

    def test_twin_same_edge_id(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        ids = g.slot_edge_id
        assert np.array_equal(ids, ids[g.twin_slot])


class TestPredicates:
    def test_regular(self):
        g = small_triangle()
        assert g.is_regular()
        assert g.is_regular(2)
        assert not g.is_regular(3)

    def test_not_regular(self):
        assert not Graph(3, [(0, 1)]).is_regular()

    def test_almost_regular(self):
        g = Graph(3, [(0, 1), (1, 2), (2, 0), (0, 1)])
        # Degrees 3, 3, 2: (1±0.25)*2.66 covers [2, 3.33].
        assert g.is_almost_regular(8 / 3, 0.25)
        assert not g.is_almost_regular(8 / 3, 0.01)


class TestTransformations:
    def test_with_self_loops_degree(self):
        g = small_triangle().with_self_loops(2)
        assert g.is_regular(6)
        assert g.self_loop_count == 6

    def test_simplify_drops_loops_and_duplicates(self):
        g = Graph(3, [(0, 1), (1, 0), (2, 2), (0, 1)])
        s = g.simplify()
        assert s.m == 1
        assert s.self_loop_count == 0

    def test_relabel_contraction(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        mapping = np.array([0, 0, 1, 1])
        contracted = g.relabel(mapping, new_n=2)
        assert contracted.n == 2
        assert contracted.m == 3  # one self-loop at 0, one at 1, one crossing
        assert contracted.self_loop_count == 2

    def test_relabel_shape_check(self):
        with pytest.raises(ValueError):
            small_triangle().relabel(np.array([0, 1]))

    def test_subgraph(self):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        sub, verts = g.subgraph(np.array([0, 1, 2]))
        assert sub.n == 3
        assert sub.m == 2
        assert verts.tolist() == [0, 1, 2]

    def test_subgraph_excludes_crossing_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        sub, _ = g.subgraph(np.array([1, 2]))
        assert sub.m == 1


class TestAdjacency:
    def test_adjacency_symmetric(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 1)])
        adj = g.adjacency_matrix().toarray()
        assert np.array_equal(adj, adj.T)
        assert adj[0, 1] == 2

    def test_self_loop_diagonal_two(self):
        g = Graph(1, [(0, 0)])
        assert g.adjacency_matrix().toarray()[0, 0] == 2

    def test_row_sums_are_degrees(self):
        g = Graph(4, [(0, 1), (1, 1), (2, 3), (3, 0), (0, 2)])
        adj = g.adjacency_matrix()
        assert np.array_equal(np.asarray(adj.sum(axis=1)).ravel(), g.degrees)


class TestEquality:
    def test_equal_up_to_edge_order(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(2, 1), (1, 0)])
        assert a == b

    def test_multiplicity_matters(self):
        a = Graph(2, [(0, 1)])
        b = Graph(2, [(0, 1), (0, 1)])
        assert a != b


class TestDisjointUnion:
    def test_offsets_and_sizes(self):
        g1 = small_triangle()
        g2 = Graph(2, [(0, 1)])
        union, offsets = disjoint_union([g1, g2])
        assert union.n == 5
        assert union.m == 4
        assert offsets.tolist() == [0, 3, 5]

    def test_no_cross_edges(self):
        g1 = small_triangle()
        g2 = Graph(2, [(0, 1)])
        union, offsets = disjoint_union([g1, g2])
        for u, v in union.edges.tolist():
            assert (u < 3) == (v < 3)

    def test_empty_list(self):
        union, offsets = disjoint_union([])
        assert union.n == 0
        assert offsets.tolist() == [0]


class TestDegenerateShapes:
    """Zero-sized and all-degenerate inputs the executor stack now leans
    on (CSR builds run on every graph the pipeline touches)."""

    def test_zero_vertex_graph(self):
        g = Graph(0, [])
        assert g.n == 0 and g.m == 0 and g.max_degree == 0
        assert g.twin_slot.size == 0
        assert g.adjacency_matrix().shape == (0, 0)

    def test_subgraph_of_nothing(self):
        g = Graph(3, [(0, 1)])
        sub, verts = g.subgraph(np.array([], dtype=np.int64))
        assert sub.n == 0 and sub.m == 0
        assert verts.size == 0

    def test_relabel_everything_to_one_vertex(self):
        g = Graph(3, [(0, 1), (1, 2)])
        contracted = g.relabel(np.zeros(3, dtype=np.int64), new_n=1)
        assert contracted.n == 1
        assert contracted.m == 2
        assert contracted.self_loop_count == 2

    def test_simplify_pure_self_loop_graph(self):
        g = Graph(2, [(0, 0), (1, 1)])
        s = g.simplify()
        assert s.m == 0 and s.n == 2

    def test_self_loop_port_neighbors(self):
        g = Graph(1, [(0, 0)])
        assert g.degree(0) == 2
        assert [g.port_neighbor(0, p) for p in range(2)] == [0, 0]

    def test_subgraph_keeps_loops_and_multiplicity(self):
        g = Graph(4, [(1, 1), (1, 2), (1, 2)])
        sub, _ = g.subgraph(np.array([1, 2]))
        assert sub.m == 3
        assert sub.self_loop_count == 1
        assert sub.parallel_edge_count == 1


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(1, 30),
    data=st.data(),
)
def test_graph_invariants_random(n, data):
    """Degree-sum, twin-involution and adjacency symmetry on random inputs."""
    m = data.draw(st.integers(0, 60))
    edges = data.draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m,
            max_size=m,
        )
    )
    g = Graph(n, edges)
    assert int(g.degrees.sum()) == 2 * g.m
    twins = g.twin_slot
    assert np.array_equal(twins[twins], np.arange(2 * g.m))
    adj = g.adjacency_matrix().toarray()
    assert np.array_equal(adj, adj.T)
