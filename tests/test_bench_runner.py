"""Runner: context bookkeeping, warmup/repeat timing, shape checks."""

import pytest

from repro import bench

NAME = "zz_test_runner_case"


@pytest.fixture
def tiny_case():
    calls = {"count": 0}

    @bench.register_benchmark(
        NAME,
        title="tiny",
        headers=["x", "rounds"],
        smoke={"xs": [1, 2], "seed": 5},
        full={"xs": [1, 2, 3], "seed": 5},
        notes="static note",
    )
    def _tiny(ctx):
        def kernel(x):
            calls["count"] += 1
            return x * 10

        for x in ctx.params["xs"]:
            value = ctx.timeit(f"kernel-{x}", kernel, x) if x == 1 else kernel(x)
            ctx.record(f"x={x}", row=[x, value], x=x, kernel_rounds=value)
        ctx.note("dynamic note")
        ctx.check("values-positive", True)

    yield calls
    bench.unregister_benchmark(NAME)


def test_run_case_smoke(tiny_case):
    result = bench.run_case(NAME, suite="smoke")
    assert result.name == NAME
    assert result.suite == "smoke"
    assert result.seed == 5
    assert [r["key"] for r in result.records] == ["x=1", "x=2"]
    assert result.rows == [[1, 10], [2, 20]]
    assert result.notes == ["static note", "dynamic note"]
    assert result.checks == [{"name": "values-positive", "ok": True}]
    assert result.total_seconds > 0


def test_suites_change_params(tiny_case):
    result = bench.run_case(NAME, suite="full")
    assert len(result.records) == 3


def test_warmup_repeat_policy(tiny_case):
    result = bench.run_case(NAME, suite="smoke", warmup=2, repeat=3)
    [timing] = result.timings
    assert timing.warmup == 2
    assert timing.repeat == 3
    assert len(timing.seconds) == 3
    assert timing.best <= timing.mean
    # warmup(2) + repeat(3) timed calls for x=1, one plain call for x=2.
    assert tiny_case["count"] == 6


def test_rounds_by_key_extracts_counters(tiny_case):
    result = bench.run_case(NAME, suite="smoke")
    assert result.rounds_by_key == {"x=1.kernel_rounds": 10,
                                    "x=2.kernel_rounds": 20}


def test_duplicate_record_key_rejected():
    @bench.register_benchmark(
        "zz_test_dup_key",
        title="dup",
        headers=["h"],
        smoke={"seed": 0},
        full={"seed": 0},
    )
    def _dup(ctx):
        ctx.record("same", row=["a"])
        ctx.record("same", row=["b"])

    try:
        with pytest.raises(ValueError, match="duplicate record key"):
            bench.run_case("zz_test_dup_key", suite="smoke")
    finally:
        bench.unregister_benchmark("zz_test_dup_key")


def test_failing_check_raises_and_names_the_check():
    @bench.register_benchmark(
        "zz_test_failing_check",
        title="failing",
        headers=["h"],
        smoke={"seed": 0},
        full={"seed": 0},
    )
    def _failing(ctx):
        ctx.check("expected-shape", False, "details here")

    try:
        with pytest.raises(bench.BenchCheckError, match="expected-shape"):
            bench.run_case("zz_test_failing_check", suite="smoke")
    finally:
        bench.unregister_benchmark("zz_test_failing_check")
