"""Tests for the faithful memory-capped executor and its primitives.

The closing ``TestClusterVsShardedBackend`` class certifies the two
enforcement layers against each other: the per-item ``Cluster`` primitives
and the vectorised ``ShardedBackend`` operations must compute identical
results, and the backend must never claim *fewer* communication barriers
than the cluster's primitives genuinely need.  Pipeline-granularity
certification (every engine charge covering its materialised exchanges
during ``mpc_connected_components``) lives in ``tests/test_differential.py``.
"""

import numpy as np
import pytest

from repro.mpc import (
    Cluster,
    MachineMemoryError,
    ShardedBackend,
    distributed_search,
    distributed_sort,
    reduce_by_key,
)


class TestMachineLimits:
    def test_scatter_balances(self):
        cluster = Cluster(4, 10)
        cluster.scatter(range(20))
        assert cluster.loads() == [5, 5, 5, 5]

    def test_scatter_overflow(self):
        cluster = Cluster(2, 3)
        with pytest.raises(MachineMemoryError):
            cluster.scatter(range(7))

    def test_send_volume_enforced(self):
        cluster = Cluster(2, 4)
        cluster.scatter(range(4))

        def flood(mid, items):
            return [(0, x) for x in items * 5]

        with pytest.raises(MachineMemoryError):
            cluster.round(flood)

    def test_receive_volume_enforced(self):
        cluster = Cluster(4, 4)
        cluster.scatter(range(16))

        def funnel(mid, items):
            return [(0, x) for x in items]

        with pytest.raises(MachineMemoryError):
            cluster.round(funnel)

    def test_bad_destination(self):
        cluster = Cluster(2, 4)
        cluster.scatter([1])

        def lost(mid, items):
            return [(9, x) for x in items]

        with pytest.raises(ValueError):
            cluster.round(lost)

    def test_items_dropped_unless_resent(self):
        cluster = Cluster(2, 4)
        cluster.scatter([1, 2, 3, 4])
        cluster.round(lambda mid, items: [])
        assert cluster.all_items() == []

    def test_round_counter(self):
        cluster = Cluster(2, 8)
        cluster.scatter([1])
        cluster.round(lambda mid, items: [(mid, x) for x in items])
        cluster.round(lambda mid, items: [(mid, x) for x in items])
        assert cluster.rounds_executed == 2


class TestDistributedSort:
    def test_sorts_integers(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 10_000, size=300).tolist()
        cluster = Cluster(8, 120)
        result = distributed_sort(cluster, data)
        assert result == sorted(data)

    def test_three_rounds(self):
        cluster = Cluster(4, 100)
        distributed_sort(cluster, list(range(100))[::-1])
        assert cluster.rounds_executed == 3

    def test_custom_key(self):
        cluster = Cluster(4, 60)
        data = [(i, -i) for i in range(50)]
        result = distributed_sort(cluster, data, key=lambda kv: kv[1])
        assert result == sorted(data, key=lambda kv: kv[1])

    def test_empty_input(self):
        cluster = Cluster(2, 10)
        assert distributed_sort(cluster, []) == []

    def test_duplicates(self):
        cluster = Cluster(4, 80)
        data = [5] * 30 + [1] * 30
        assert distributed_sort(cluster, data) == sorted(data)


class TestDistributedSearch:
    def test_annotates_queries(self):
        cluster = Cluster(4, 100)
        data = [(k, k * k) for k in range(50)]
        queries = [3, 7, 49, 99]
        result = distributed_search(cluster, data, queries)
        assert result == {3: 9, 7: 49, 49: 49 * 49}

    def test_missing_keys_omitted(self):
        cluster = Cluster(2, 50)
        result = distributed_search(cluster, [(1, "a")], [2])
        assert result == {}

    def test_two_rounds(self):
        cluster = Cluster(4, 100)
        distributed_search(cluster, [(1, "a")], [1])
        assert cluster.rounds_executed == 2


class TestReduceByKey:
    def test_sums_groups(self):
        cluster = Cluster(4, 100)
        pairs = [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", 5)]
        result = reduce_by_key(cluster, pairs, lambda x, y: x + y)
        assert result == {"a": 4, "b": 7, "c": 4}

    def test_single_round(self):
        cluster = Cluster(4, 100)
        reduce_by_key(cluster, [("a", 1)], lambda x, y: x + y)
        assert cluster.rounds_executed == 1

    def test_empty(self):
        cluster = Cluster(2, 10)
        assert reduce_by_key(cluster, [], lambda x, y: x + y) == {}


class TestClusterVsShardedBackend:
    """Differential certification between the two enforcement layers."""

    def test_sort_agrees(self):
        data = np.random.default_rng(3).integers(0, 10_000, size=300)
        cluster = Cluster(8, 120)
        from_cluster = distributed_sort(cluster, data.tolist())
        backend = ShardedBackend(shard_memory=120)
        from_backend = backend.sort(data)
        assert from_cluster == from_backend.tolist()
        # Sample sort needs 3 barriers; the splitter-routed shard sort
        # claims 1 — the backend must never claim more than the cluster.
        assert backend.stats().exchanges <= cluster.rounds_executed

    def test_reduce_by_key_agrees(self):
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 12, size=80)
        values = rng.integers(0, 100, size=80)
        cluster = Cluster(4, 200)
        from_cluster = reduce_by_key(
            cluster, zip(keys.tolist(), values.tolist()), lambda a, b: a + b
        )
        backend = ShardedBackend(shard_memory=200)
        unique, reduced = backend.reduce_by_key(keys, values, op="sum")
        assert from_cluster == dict(zip(unique.tolist(), reduced.tolist()))
        assert backend.stats().exchanges <= cluster.rounds_executed

    def test_search_agrees(self):
        table = np.arange(100, dtype=np.int64) * 7
        queries = np.random.default_rng(5).integers(0, 100, size=40)
        cluster = Cluster(4, 200)
        from_cluster = distributed_search(
            cluster,
            [(int(i), int(v)) for i, v in enumerate(table)],
            [int(q) for q in queries],
        )
        backend = ShardedBackend(shard_memory=200)
        from_backend = backend.search(table, queries)
        assert all(from_cluster[int(q)] == int(r)
                   for q, r in zip(queries, from_backend))
        assert backend.stats().exchanges <= cluster.rounds_executed

    def test_cluster_counts_cross_machine_messages(self):
        cluster = Cluster(2, 8)
        cluster.scatter([1, 2, 3, 4])
        # Everything to machine 0: machine 1's two items cross over.
        cluster.round(lambda mid, items: [(0, x) for x in items])
        assert cluster.messages_exchanged == 2
        # Pure self-addressing moves nothing between machines.
        cluster.round(lambda mid, items: [(mid, x) for x in items])
        assert cluster.messages_exchanged == 2

    def test_both_layers_enforce_the_same_capacity(self):
        items = 40
        cluster = Cluster(4, 8)  # capacity 32
        with pytest.raises(MachineMemoryError):
            cluster.scatter(range(items))
        backend = ShardedBackend(shard_memory=8, max_shards=4)
        with pytest.raises(MachineMemoryError):
            backend.scatter(np.arange(items))


class TestSortScaling:
    def test_sort_respects_memory_at_scale(self):
        """1000 items on 16 machines with memory 192 (≈3× the average
        load, the usual sample-sort slack) — must stay within caps (this
        certifies the O(1)-exchange claim for the s = N^δ regime the
        engine charges for)."""
        rng = np.random.default_rng(1)
        data = rng.integers(0, 1 << 20, size=1000).tolist()
        cluster = Cluster(16, 192)
        result = distributed_sort(cluster, data)
        assert result == sorted(data)
        assert cluster.rounds_executed == 3
