"""Tests for the predicted round-complexity formulas."""

import pytest

from repro import theory


class TestShapes:
    def test_theorem1_flat_in_n(self):
        """log log n: doubling the exponent of n adds ~1."""
        small = theory.theorem1_rounds(2**10, 0.3)
        large = theory.theorem1_rounds(2**20, 0.3)
        assert large - small <= 1.1 / 0.25

    def test_theorem1_linear_in_log_inv_gap(self):
        base = theory.theorem1_rounds(10**6, 0.5)
        worse = theory.theorem1_rounds(10**6, 0.5 / 1024)
        assert worse - base == pytest.approx(10 / 0.25, rel=0.01)

    def test_theorem2_falls_with_memory(self):
        assert theory.theorem2_rounds(10**6, 10**5) < theory.theorem2_rounds(
            10**6, 10**2
        )

    def test_corollary71_dominates_theorem1(self):
        n, gap = 10**6, 1e-3
        assert theory.corollary71_rounds(n, gap) >= theory.theorem1_rounds(n, gap)

    def test_pram_logarithmic(self):
        assert theory.classical_pram_rounds(2**16) == pytest.approx(16)

    def test_crossover_pram_vs_theorem1(self):
        """The headline claim: for large n and moderate gap, Theorem 1
        beats PRAM by an exponential margin."""
        n = 2**30
        assert theory.theorem1_rounds(n, 0.3, delta=1.0) < theory.classical_pram_rounds(n) / 4

    def test_lower_bound_rounds(self):
        # polylog memory -> Ω(log n / log log n) rounds.
        n = 2**20
        s = 20**2
        assert theory.lower_bound_rounds(n, s) == pytest.approx(
            20 * 0.6931 / (2 * 2.9957), rel=0.01
        )

    def test_lower_bound_queries_near_linear(self):
        assert theory.lower_bound_queries(2**16) == pytest.approx(2**16 / 16)


class TestLowerBoundChain:
    def test_dt_to_degree_sixth_root(self):
        assert theory.dt_to_approx_degree(2**6) == pytest.approx(2.0)
        assert theory.dt_to_approx_degree(0) == 0.0

    def test_degree_to_rounds_log_s(self):
        assert theory.approx_degree_to_mpc_rounds(1000.0, 10) == pytest.approx(3.0)
        assert theory.approx_degree_to_mpc_rounds(0.5, 10) == 0.0

    def test_full_chain_consistent(self):
        """The chained bound equals (1/6)·log_s(n/log n) — asymptotically
        Ω(log_s n), matching Theorem 5."""
        import math

        n, s = 2**24, 2**8
        chained = theory.expander_conn_round_lower_bound(n, s)
        direct = math.log(n / math.log2(n)) / (6 * math.log(s))
        assert chained == pytest.approx(direct, rel=1e-9)

    def test_chain_monotone_in_n(self):
        assert theory.expander_conn_round_lower_bound(
            2**30, 256
        ) > theory.expander_conn_round_lower_bound(2**15, 256)

    def test_chain_falls_with_memory(self):
        assert theory.expander_conn_round_lower_bound(
            2**20, 2**12
        ) < theory.expander_conn_round_lower_bound(2**20, 2**4)

    def test_pram_remark_9_5(self):
        """Ω(log n) PRAM steps, up to the log log correction from k."""
        import math

        n = 2**20
        bound = theory.pram_lower_bound_rounds(n)
        assert 0.5 * math.log2(n) <= bound <= math.log2(n)

    def test_validators(self):
        with pytest.raises(ValueError):
            theory.dt_to_approx_degree(-1)
        with pytest.raises(ValueError):
            theory.approx_degree_to_mpc_rounds(10.0, 1)


class TestFit:
    def test_fit_recovers_scale(self):
        predicted = [1.0, 2.0, 3.0]
        measured = [2.0, 4.0, 6.0]
        assert theory.fit_constant(measured, predicted) == pytest.approx(2.0)

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            theory.fit_constant([], [])

    def test_fit_rejects_zero_prediction(self):
        with pytest.raises(ValueError):
            theory.fit_constant([1.0], [0.0])

    def test_validators(self):
        with pytest.raises(ValueError):
            theory.theorem1_rounds(0, 0.5)
        with pytest.raises(ValueError):
            theory.theorem1_rounds(10, 3.0)
