"""Tests for RNG discipline and validators."""

import numpy as np
import pytest

from repro.utils import (
    check_in_range,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
    ensure_rng,
    spawn_rngs,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = ensure_rng(123).integers(0, 1 << 30, size=8)
        b = ensure_rng(123).integers(0, 1 << 30, size=8)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_differ(self):
        kids = spawn_rngs(0, 2)
        a = kids[0].integers(0, 1 << 30, size=16)
        b = kids[1].integers(0, 1 << 30, size=16)
        assert not np.array_equal(a, b)

    def test_reproducible_from_seed(self):
        a = spawn_rngs(9, 3)[2].integers(0, 1 << 30, size=4)
        b = spawn_rngs(9, 3)[2].integers(0, 1 << 30, size=4)
        assert np.array_equal(a, b)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidators:
    def test_positive_int_accepts_numpy_ints(self):
        assert check_positive_int(np.int64(3), "x") == 3

    def test_positive_int_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_positive_int_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_positive_int_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "x")

    def test_nonnegative_int(self):
        assert check_nonnegative_int(0, "x") == 0
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")

    def test_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
        with pytest.raises(TypeError):
            check_probability("0.5", "p")

    def test_in_range(self):
        assert check_in_range(2, "x", 1, 3) == 2.0
        with pytest.raises(ValueError):
            check_in_range(0, "x", 1, 3)
