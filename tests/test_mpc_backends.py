"""Tests for the pluggable execution backends (local + sharded).

Covers the operation semantics (both backends must compute identical
results — the differential suites rely on bit-equality), the shard-cap
enforcement property (``MachineMemoryError`` exactly when the input
exceeds ``max_shards × shard_memory``), and the agreement between the
engine's machine accounting and the backend's observed fleet.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc import (
    BackendStats,
    LocalBackend,
    MachineMemoryError,
    MPCEngine,
    ShardedArray,
    ShardedBackend,
    make_backend,
)

BOTH = [LocalBackend, lambda: ShardedBackend(shard_memory=16)]


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestShardedArray:
    def test_partition_shapes(self):
        arr = ShardedArray(np.arange(10), 4)
        assert arr.shard_count == 3
        assert arr.loads() == [4, 4, 2]
        assert arr.max_load == 4

    def test_single_shard(self):
        arr = ShardedArray(np.arange(3), 16)
        assert arr.shard_count == 1
        assert arr.loads() == [3]

    def test_shards_are_views(self):
        data = np.arange(8)
        arr = ShardedArray(data, 4)
        arr.shards()[0][0] = 99
        assert data[0] == 99


class TestOperationSemantics:
    """Both backends must produce identical results for every op."""

    @pytest.mark.parametrize("factory", BOTH)
    def test_sort(self, factory):
        values = _rng(1).integers(0, 1000, size=200)
        assert np.array_equal(factory().sort(values), np.sort(values, kind="stable"))

    @pytest.mark.parametrize("factory", BOTH)
    def test_sort_by_key(self, factory):
        values = np.arange(100)
        keys = _rng(2).integers(0, 50, size=100)
        expected = values[np.argsort(keys, kind="stable")]
        assert np.array_equal(factory().sort(values, order_by=keys), expected)

    @pytest.mark.parametrize("factory", BOTH)
    def test_search(self, factory):
        table = _rng(3).integers(0, 10**6, size=120)
        queries = _rng(4).integers(0, 120, size=300)
        assert np.array_equal(factory().search(table, queries), table[queries])

    @pytest.mark.parametrize("factory", BOTH)
    @pytest.mark.parametrize("op,ufunc", [("min", np.minimum), ("max", np.maximum),
                                          ("sum", np.add)])
    def test_reduce_by_key(self, factory, op, ufunc):
        keys = _rng(5).integers(0, 20, size=150)
        values = _rng(6).integers(0, 1000, size=150)
        unique, reduced = factory().reduce_by_key(keys, values, op=op)
        assert np.array_equal(unique, np.unique(keys))
        for k, r in zip(unique, reduced):
            assert r == ufunc.reduce(values[keys == k])

    @pytest.mark.parametrize("factory", BOTH)
    def test_reduce_by_key_min_index_matches_unique(self, factory):
        """op='min' over ascending indices == np.unique first-occurrence —
        the contraction dedup depends on this exactly."""
        keys = _rng(7).integers(0, 30, size=200)
        idx = np.arange(200)
        unique, reduced = factory().reduce_by_key(keys, idx, op="min")
        expected_keys, expected_first = np.unique(keys, return_index=True)
        assert np.array_equal(unique, expected_keys)
        assert np.array_equal(reduced, expected_first)

    @pytest.mark.parametrize("factory", BOTH)
    def test_reduce_by_key_empty(self, factory):
        unique, reduced = factory().reduce_by_key(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert unique.size == 0 and reduced.size == 0

    @pytest.mark.parametrize("factory", BOTH)
    def test_reduce_by_key_rejects_unknown_op(self, factory):
        with pytest.raises(ValueError):
            factory().reduce_by_key(np.array([1]), np.array([1]), op="median")

    @pytest.mark.parametrize("factory", BOTH)
    def test_min_label_exchange(self, factory):
        labels = np.array([5, 1, 7, 3, 9], dtype=np.int64)
        send = np.array([0, 1, 2, 4], dtype=np.int64)
        recv = np.array([2, 0, 3, 2], dtype=np.int64)
        new_labels, incoming = factory().min_label_exchange(labels, send, recv)
        assert np.array_equal(incoming, labels[send])
        expected = labels.copy()
        np.minimum.at(expected, recv, labels[send])
        assert np.array_equal(new_labels, expected)

    @pytest.mark.parametrize("factory", BOTH)
    def test_scatter_roundtrip(self, factory):
        values = np.arange(40)
        placed = factory().scatter(values)
        assert np.array_equal(np.asarray(placed.data if isinstance(
            placed, ShardedArray) else placed), values)


class TestShardedAccounting:
    def test_single_shard_ops_are_local(self):
        backend = ShardedBackend(shard_memory=1024)
        backend.sort(np.arange(10)[::-1])
        backend.search(np.arange(10), np.array([3, 4]))
        stats = backend.stats()
        assert stats.exchanges == 0
        assert stats.bytes_exchanged == 0
        assert stats.shard_count == 1

    def test_multi_shard_ops_exchange(self):
        backend = ShardedBackend(shard_memory=16)
        backend.sort(_rng(8).integers(0, 1000, size=100))
        stats = backend.stats()
        assert stats.exchanges == 1
        assert stats.bytes_exchanged > 0
        assert stats.shard_count == 7  # ceil(100/16)
        assert stats.peak_shard_load == 16

    def test_exchange_delta_attribution(self):
        backend = ShardedBackend(shard_memory=16)
        assert backend.take_exchange_delta() == 0
        backend.sort(_rng(9).integers(0, 100, size=64))
        backend.search(np.arange(64), _rng(10).integers(0, 64, size=64))
        assert backend.take_exchange_delta() == 2
        assert backend.take_exchange_delta() == 0

    def test_reset_clears_counters(self):
        backend = ShardedBackend(shard_memory=16)
        backend.sort(_rng(11).integers(0, 100, size=64))
        backend.reset()
        stats = backend.stats()
        assert (stats.exchanges, stats.bytes_exchanged, stats.shard_count,
                stats.peak_shard_load) == (0, 0, 0, 0)
        assert stats.op_counts == {}

    def test_stats_to_json_roundtrips(self):
        stats = ShardedBackend(shard_memory=8).stats()
        doc = stats.to_json()
        assert doc["name"] == "sharded"
        assert doc["shard_memory"] == 8
        assert isinstance(doc["op_counts"], dict)

    def test_requires_shard_memory(self):
        backend = ShardedBackend()
        with pytest.raises(RuntimeError):
            backend.sort(np.arange(4))

    def test_attach_binds_engine_memory(self):
        backend = ShardedBackend()
        MPCEngine(64, backend=backend)
        assert backend.shard_memory == 64

    def test_attach_keeps_explicit_memory(self):
        backend = ShardedBackend(shard_memory=8)
        MPCEngine(64, backend=backend)
        assert backend.shard_memory == 8


class TestCapEnforcement:
    """The property the model demands: input exceeding ``max_shards × s``
    cannot be placed; anything within always can."""

    @pytest.mark.parametrize("max_shards", [1, 2, 5])
    @pytest.mark.parametrize("memory", [2, 7, 16])
    def test_scatter_cap_sweep(self, max_shards, memory):
        capacity = max_shards * memory
        for items in (0, 1, capacity - 1, capacity, capacity + 1, 2 * capacity):
            backend = ShardedBackend(shard_memory=memory, max_shards=max_shards)
            if items > capacity:
                with pytest.raises(MachineMemoryError):
                    backend.scatter(np.zeros(items, dtype=np.int64))
            else:
                placed = backend.scatter(np.zeros(items, dtype=np.int64))
                assert placed.max_load <= memory
                assert backend.stats().shard_count == max(
                    1, -(-items // memory)
                )

    def test_engine_charges_enforce_caps(self):
        backend = ShardedBackend(shard_memory=10, max_shards=3)
        engine = MPCEngine(10, backend=backend)
        engine.charge_sort(30, label="fits exactly")
        with pytest.raises(MachineMemoryError):
            engine.charge_sort(31, label="one word too many")

    def test_note_data_volume_enforces_caps(self):
        backend = ShardedBackend(shard_memory=10, max_shards=3)
        engine = MPCEngine(10, backend=backend)
        with pytest.raises(MachineMemoryError):
            engine.note_data_volume(31)

    def test_peak_machines_agrees_with_shard_count(self):
        backend = ShardedBackend()
        engine = MPCEngine(50, backend=backend)
        for items in (7, 499, 120, 350):
            engine.charge_sort(items)
        assert engine.peak_machines == backend.stats().shard_count == 10

    @settings(max_examples=60, deadline=None)
    @given(
        memory=st.integers(2, 64),
        max_shards=st.integers(1, 8),
        items=st.integers(0, 600),
    )
    def test_cap_property(self, memory, max_shards, items):
        """Hypothesis sweep: MachineMemoryError iff items > shards × s,
        and the observed fleet always matches the engine's accounting."""
        backend = ShardedBackend(shard_memory=memory, max_shards=max_shards)
        engine = MPCEngine(memory, backend=backend)
        if items > max_shards * memory:
            with pytest.raises(MachineMemoryError):
                engine.charge_sort(items)
        else:
            engine.charge_sort(items)
            assert engine.peak_machines == backend.stats().shard_count
            assert backend.stats().peak_shard_load <= memory


class TestMakeBackend:
    def test_by_name(self):
        assert isinstance(make_backend("local"), LocalBackend)
        assert isinstance(make_backend("sharded"), ShardedBackend)

    def test_with_options(self):
        backend = make_backend("sharded", shard_memory=32, max_shards=4)
        assert backend.shard_memory == 32
        assert backend.max_shards == 4

    def test_none_passthrough(self):
        assert make_backend(None) is None

    def test_instance_passthrough(self):
        backend = LocalBackend()
        assert make_backend(backend) is backend

    def test_instance_with_options_rejected(self):
        with pytest.raises(ValueError):
            make_backend(LocalBackend(), shard_memory=8)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_backend("quantum")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            make_backend(42)


class TestEngineIntegration:
    def test_default_backend_is_local(self):
        engine = MPCEngine(16)
        assert isinstance(engine.backend, LocalBackend)

    def test_summary_embeds_backend_stats(self):
        engine = MPCEngine(16, backend=ShardedBackend())
        engine.charge_sort(100)
        doc = engine.summary()["backend"]
        assert doc["name"] == "sharded"
        assert doc["shard_count"] == engine.peak_machines

    def test_local_charges_record_zero_exchanges(self):
        engine = MPCEngine(16)
        engine.charge_sort(100)
        assert engine.charges[0].exchanges == 0

    def test_reset_resets_backend(self):
        backend = ShardedBackend(shard_memory=8)
        engine = MPCEngine(8, backend=backend)
        engine.charge_sort(100)
        engine.reset()
        assert backend.stats().shard_count == 0

    def test_stats_dataclass_defaults(self):
        stats = BackendStats(name="local")
        assert stats.exchanges == 0
        assert stats.to_json()["op_counts"] == {}
