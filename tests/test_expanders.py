"""Tests for the parallel expander construction (Section 4)."""

import pytest

from repro.graph import component_count, spectral_gap
from repro.mpc import MPCEngine
from repro.products import (
    build_expander,
    circulant_multigraph,
    friedman_gap_threshold,
    regular_graph_construction,
)


class TestFriedmanThreshold:
    def test_paper_degree_reproduces_four_fifths(self):
        # Corollary 4.4: d = 100 gives λ₂ ≥ 4/5.
        assert friedman_gap_threshold(100) == pytest.approx(0.78, abs=0.03)

    def test_monotone_in_degree(self):
        assert friedman_gap_threshold(50) > friedman_gap_threshold(8)

    def test_floor_for_tiny_degree(self):
        assert friedman_gap_threshold(2) == 0.05


class TestCirculant:
    @pytest.mark.parametrize("n,d", [(1, 4), (2, 4), (3, 6), (5, 4), (20, 6)])
    def test_exact_regularity(self, n, d):
        assert circulant_multigraph(n, d).is_regular(d)

    def test_single_vertex_self_loops(self):
        g = circulant_multigraph(1, 6)
        assert g.self_loop_count == 3
        assert g.degree(0) == 6

    def test_small_circulant_is_expanding(self):
        g = circulant_multigraph(5, 8)
        assert spectral_gap(g) > 0.5

    def test_rejects_odd_degree(self):
        with pytest.raises(ValueError):
            circulant_multigraph(5, 3)


class TestBuildExpander:
    def test_meets_gap_threshold(self):
        g, gap = build_expander(100, 8, rng=0)
        assert g.is_regular(8)
        assert gap >= friedman_gap_threshold(8)
        assert component_count(g) == 1

    def test_gap_matches_measurement(self):
        g, gap = build_expander(80, 8, rng=1)
        assert gap == pytest.approx(spectral_gap(g), abs=1e-9)

    def test_tiny_sizes_use_circulant(self):
        for n in (1, 2, 3, 8):
            g, gap = build_expander(n, 8, rng=0)
            assert g.is_regular(8)
            assert gap > 0

    def test_explicit_threshold(self):
        g, gap = build_expander(60, 10, gap_threshold=0.3, rng=2)
        assert gap >= 0.3

    def test_impossible_threshold_raises(self):
        with pytest.raises(RuntimeError):
            build_expander(50, 4, gap_threshold=1.99, rng=0)

    def test_rejects_odd_degree(self):
        with pytest.raises(ValueError):
            build_expander(10, 5)


class TestRegularGraphConstruction:
    def test_one_expander_per_distinct_size(self):
        clouds = regular_graph_construction([3, 5, 3, 8, 5], 6, rng=0)
        assert set(clouds.keys()) == {3, 5, 8}
        for size, cloud in clouds.items():
            assert cloud.n == size
            assert cloud.is_regular(6)

    def test_engine_charged(self):
        engine = MPCEngine(64)
        regular_graph_construction([4, 200], 6, rng=0, engine=engine)
        assert engine.rounds >= 2  # small pack + large sample/sort
        phases = {p.name for p in engine.phase_summaries()}
        assert "RegularGraphConstruction" in phases

    def test_large_sizes_charge_sort(self):
        engine = MPCEngine(16)
        regular_graph_construction([500], 6, rng=0, engine=engine)
        kinds = {c.kind for c in engine.charges}
        assert "sort" in kinds

    def test_reproducible(self):
        a = regular_graph_construction([5, 9], 6, rng=7)
        b = regular_graph_construction([5, 9], 6, rng=7)
        assert a[5] == b[5] and a[9] == b[9]

    def test_gaps_all_positive(self):
        clouds = regular_graph_construction([2, 4, 16, 64], 8, rng=0)
        for size, cloud in clouds.items():
            if size > 1:
                assert spectral_gap(cloud) > 0.05, f"size {size}"
