"""Unit tests for the streaming-connectivity subsystem."""

import numpy as np
import pytest

from repro.graph import canonical_labels, dumbbell_graph, path_graph
from repro.streaming import (
    EventBatch,
    StreamingConnectivity,
    StreamWorkload,
    stream_pattern_names,
)


class TestEventBatch:
    def test_insert_delete_constructors(self):
        edges = [[0, 1], [2, 3]]
        ins = EventBatch.insert(edges)
        dele = EventBatch.delete(edges)
        assert ins.size == dele.size == 2
        assert ins.inserts == 2 and ins.deletes == 0
        assert dele.inserts == 0 and dele.deletes == 2

    def test_normalises_dtypes(self):
        batch = EventBatch([[0, 1]], [3])
        assert batch.edges.dtype == np.int64
        assert batch.weights.dtype == np.int64
        assert batch.edges.shape == (1, 2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="weights"):
            EventBatch([[0, 1], [1, 2]], [1])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            EventBatch([[4, 4]], [1])

    def test_negative_endpoint_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EventBatch([[-1, 2]], [1])

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError, match="zero-weight"):
            EventBatch([[0, 1]], [0])

    def test_mixed_weights(self):
        batch = EventBatch([[0, 1], [1, 2], [2, 3]], [2, -1, -3])
        assert batch.inserts == 2
        assert batch.deletes == 4


class TestStreamingConnectivity:
    def test_empty_structure_is_singletons(self):
        conn = StreamingConnectivity(5, rng=0)
        assert conn.edge_count == 0
        labels = conn.query()
        assert np.array_equal(labels, np.arange(5))
        assert conn.component_count() == 5

    def test_insert_then_query(self):
        conn = StreamingConnectivity(6, rng=1)
        conn.apply_edges([[0, 1], [1, 2], [3, 4]])
        assert conn.connected(0, 2)
        assert conn.connected(3, 4)
        assert not conn.connected(0, 3)
        assert conn.component_count() == 3

    def test_delete_splits_component(self):
        conn = StreamingConnectivity(8, rng=2)
        conn.apply_edges(path_graph(8).edges)
        assert conn.component_count() == 1
        conn.apply(EventBatch.delete([[3, 4]]))
        assert not conn.connected(3, 4)
        assert conn.component_count() == 2

    def test_duplicate_edges_need_both_deletes(self):
        conn = StreamingConnectivity(3, rng=3)
        conn.apply_edges([[0, 1], [0, 1]])
        conn.apply(EventBatch.delete([[0, 1]]))
        assert conn.connected(0, 1)  # one parallel copy remains
        conn.apply(EventBatch.delete([[0, 1]]))
        assert not conn.connected(0, 1)

    def test_delete_absent_edge_rejected_atomically(self):
        conn = StreamingConnectivity(4, rng=4)
        conn.apply_edges([[0, 1]])
        before = conn.query()
        bad = EventBatch([[1, 2], [2, 3]], [1, -1])
        with pytest.raises(ValueError, match="below multiplicity 0"):
            conn.apply(bad)
        # Nothing mutated: neither the valid insert nor the bad delete.
        assert conn.edge_count == 1
        assert np.array_equal(conn.query(), before)
        assert conn.stats.batches_applied == 1

    def test_within_batch_insert_then_delete_is_fine(self):
        conn = StreamingConnectivity(4, rng=5)
        # Net delta for (1, 2) is zero — batches aggregate before checking.
        conn.apply(EventBatch([[1, 2], [2, 1]], [1, -1]))
        assert conn.edge_count == 0
        assert conn.component_count() == 4

    def test_out_of_range_endpoint_rejected(self):
        conn = StreamingConnectivity(4, rng=6)
        with pytest.raises(ValueError, match="out of range"):
            conn.apply(EventBatch.insert([[0, 7]]))

    def test_negative_endpoint_rejected_atomically(self):
        # Regression: a negative endpoint passes a max()-only bound check,
        # so the multiset used to mutate before the sketch update raised.
        # Both bounds are validated up front now; nothing may change.
        conn = StreamingConnectivity(4, rng=6)
        conn.apply_edges([[0, 1]])
        before = conn.query()
        sketch_before = [r.totals.copy() for r in conn._sketch.rounds]
        batch = EventBatch.insert([[1, 2], [2, 3]])
        batch.edges[0, 0] = -1  # bypass EventBatch construction checks
        with pytest.raises(ValueError, match="out of range"):
            conn.apply(batch)
        assert conn.edge_count == 1
        assert conn._multiplicity == {0 * 4 + 1: 1}
        for round_sketch, totals in zip(conn._sketch.rounds, sketch_before):
            assert np.array_equal(round_sketch.totals, totals)
        assert np.array_equal(conn.query(), before)
        assert conn.stats.batches_applied == 1

    def test_current_graph_round_trips_multiset(self):
        conn = StreamingConnectivity(6, rng=7)
        conn.apply_edges([[0, 5], [0, 5], [2, 3]])
        g = conn.current_graph()
        assert g.n == 6
        assert sorted(map(tuple, g.edges.tolist())) == [(0, 5), (0, 5), (2, 3)]
        conn.apply(EventBatch.delete([[0, 5]]))
        assert sorted(map(tuple, conn.current_graph().edges.tolist())) == [
            (0, 5),
            (2, 3),
        ]

    def test_query_matches_oracle_after_churn(self):
        g = dumbbell_graph(16, 4, rng=8)
        conn = StreamingConnectivity(g.n, rng=8)
        edges = g.edges[g.edges[:, 0] != g.edges[:, 1]]  # events reject loops
        conn.apply_edges(edges)
        expected = canonical_labels(
            np.zeros(g.n, dtype=np.int64)
        )  # dumbbell is connected
        assert np.array_equal(conn.query(), expected)

    def test_decode_failure_falls_back_to_oracle(self):
        # Too few Borůvka rounds to converge on a long path: the sketch
        # decoder raises, and the oracle fallback must still be exact.
        conn = StreamingConnectivity(64, rng=9, boruvka_rounds=1)
        conn.apply_edges(path_graph(64).edges)
        labels = conn.query()
        assert np.array_equal(labels, np.zeros(64, dtype=np.int64))
        assert conn.stats.decode_failures == 1
        assert conn.stats.full_recomputes == 1
        assert conn.stats.sketch_rebuilds >= 1

    def test_recompute_every_schedule(self):
        conn = StreamingConnectivity(10, rng=10, recompute_every=2)
        conn.apply_edges([[0, 1]])
        conn.query()
        assert conn.stats.scheduled_recomputes == 0
        conn.apply_edges([[1, 2]])
        conn.query()  # second batch since last recompute: due
        assert conn.stats.scheduled_recomputes == 1
        assert conn.stats.full_recomputes == 1

    def test_forced_recompute_matches_sketch_path(self):
        conn = StreamingConnectivity(12, rng=11)
        conn.apply_edges(path_graph(12).edges)
        sketched = conn.query()
        forced = conn.recompute()
        assert np.array_equal(sketched, forced)
        assert conn.stats.full_recomputes == 1

    def test_query_is_cached_until_next_apply(self):
        conn = StreamingConnectivity(8, rng=12)
        conn.apply_edges(path_graph(8).edges)
        conn.query()
        queries_after_first = conn.stats.sketch_queries
        conn.query()
        assert conn.stats.sketch_queries == queries_after_first
        conn.apply_edges([[0, 7]])
        conn.query()
        assert conn.stats.sketch_queries == queries_after_first + 1

    def test_stats_to_json_schema(self):
        conn = StreamingConnectivity(4, rng=13)
        conn.apply_edges([[0, 1]])
        conn.query()
        snapshot = conn.stats.to_json()
        assert snapshot["batches_applied"] == 1
        assert snapshot["events_applied"] == 1
        assert set(snapshot) == {
            "batches_applied",
            "events_applied",
            "sketch_queries",
            "decode_failures",
            "scheduled_recomputes",
            "full_recomputes",
            "sketch_rebuilds",
            "oracle_rounds",
            "sketch",
        }
        # Monolithic ingest still carries the sketch block, zero-filled.
        assert snapshot["sketch"] == {
            "shard_updates": 0,
            "merges": 0,
            "partial_words": 0,
        }

    def test_sharded_ingest_matches_monolithic(self):
        events = [
            ([[0, 1], [1, 2], [3, 4]], [1, 1, 1]),
            ([[1, 2], [2, 3]], [-1, 1]),
            ([[0, 1]], [-1]),
        ]

        def run(**kwargs):
            conn = StreamingConnectivity(6, rng=9, **kwargs)
            labels = []
            for edges, weights in events:
                conn.apply_edges(edges, weights)
                labels.append(conn.query())
            stats = conn.stats.to_json()
            conn.close()
            return labels, stats

        base, _ = run()
        labels, stats = run(sketch_shards=3)
        for mono, sharded in zip(base, labels):
            assert np.array_equal(mono, sharded)
        assert stats["sketch"]["shard_updates"] == 9  # 3 shards x 3 batches
        assert stats["sketch"]["merges"] == 3  # one decode per query
        assert stats["sketch"]["partial_words"] > 0

    def test_close_is_idempotent_and_query_recovers(self):
        conn = StreamingConnectivity(5, rng=10, sketch_shards=2)
        conn.apply_edges([[0, 1], [2, 3]])
        expected = conn.query()
        conn.close()
        conn.close()
        # After close the sketch is gone; the next uncached query falls
        # back to the oracle, which rebuilds a fresh sketch from the
        # multiset — the structure stays usable.
        conn._cached_labels = None
        assert np.array_equal(conn.query(), expected)
        assert conn.stats.decode_failures >= 1
        conn.apply_edges([[3, 4]])
        labels = conn.query()
        assert labels[3] == labels[4]
        conn.close()


class TestStreamWorkloads:
    def test_pattern_registry(self):
        names = stream_pattern_names()
        assert names == sorted(names)
        for expected in (
            "churn",
            "component_split",
            "delete_heavy",
            "insert_heavy",
        ):
            assert expected in names

    def test_unknown_pattern_rejected(self):
        with pytest.raises(KeyError, match="unknown stream pattern"):
            StreamWorkload("path", 16, "nope")

    def test_build_is_deterministic(self):
        for pattern in stream_pattern_names():
            a = StreamWorkload("erdos_renyi", 32, pattern, batches=4).build(17)
            b = StreamWorkload("erdos_renyi", 32, pattern, batches=4).build(17)
            assert len(a) == len(b)
            for x, y in zip(a, b):
                assert np.array_equal(x.edges, y.edges)
                assert np.array_equal(x.weights, y.weights)

    @pytest.mark.parametrize("pattern", ["insert_heavy", "delete_heavy", "churn"])
    def test_streams_never_go_negative(self, pattern):
        stream = StreamWorkload("paper_random", 40, pattern, batches=5).build(18)
        conn = StreamingConnectivity(stream.n, rng=19)
        for batch in stream:  # apply() raises if any multiplicity dips < 0
            conn.apply(batch)
        assert conn.stats.batches_applied == len(stream)

    def test_insert_heavy_covers_all_edges(self):
        stream = StreamWorkload("cycle", 24, "insert_heavy", batches=4).build(20)
        conn = StreamingConnectivity(stream.n, rng=21)
        for batch in stream:
            assert np.all(batch.weights > 0)
            conn.apply(batch)
        assert conn.edge_count == 24  # every cycle edge arrived exactly once
        assert conn.component_count() == 1

    def test_delete_heavy_tears_down(self):
        stream = StreamWorkload("star", 20, "delete_heavy", batches=5).build(22)
        conn = StreamingConnectivity(stream.n, rng=23)
        total_inserted = stream.batches[0].size
        for batch in stream:
            conn.apply(batch)
        assert conn.edge_count < total_inserted  # most instances deleted
        assert conn.component_count() > 1

    def test_component_split_splits_then_remerges(self):
        stream = StreamWorkload("path", 30, "component_split").build(24)
        conn = StreamingConnectivity(stream.n, rng=25)
        batches = list(stream)
        counts = []
        for batch in batches:
            conn.apply(batch)
            counts.append(conn.component_count())
        # After all crossing edges are deleted the halves are separate;
        # the final fresh bridge re-merges them.
        assert counts[-2] > counts[0]
        assert counts[-1] < counts[-2]

    def test_workload_label(self):
        wl = StreamWorkload("grid", 36, "churn")
        assert wl.label.startswith("churn:grid")

    def test_total_events(self):
        stream = StreamWorkload("path", 16, "insert_heavy", batches=3).build(26)
        assert stream.total_events == sum(b.size for b in stream)
        assert stream.total_events == 15
