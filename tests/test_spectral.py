"""Tests for spectral-gap machinery (Section 2.1)."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    cheeger_bounds,
    complete_graph,
    component_spectral_gaps,
    cycle_graph,
    dumbbell_graph,
    is_connected_via_gap,
    laplacian_spectrum,
    min_component_spectral_gap,
    normalized_adjacency,
    normalized_laplacian,
    path_graph,
    permutation_regular_graph,
    planted_expander_components,
    spectral_gap,
)


class TestLaplacian:
    def test_spectrum_range(self):
        g = permutation_regular_graph(40, 6, rng=0)
        spec = laplacian_spectrum(g)
        assert spec[0] == pytest.approx(0.0, abs=1e-8)
        assert spec[-1] <= 2.0 + 1e-9

    def test_isolated_vertex_rejected(self):
        with pytest.raises(ValueError):
            normalized_laplacian(Graph(2, [(0, 0)]))

    def test_normalized_adjacency_symmetric(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 1)])
        mat = normalized_adjacency(g).toarray()
        assert np.allclose(mat, mat.T)

    def test_zero_eigenvalue_multiplicity_counts_components(self):
        g = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        spec = laplacian_spectrum(g)
        assert np.sum(np.abs(spec) < 1e-8) == 2


class TestSpectralGap:
    def test_complete_graph_gap(self):
        # λ₂(K_n) = n/(n-1).
        n = 8
        assert spectral_gap(complete_graph(n)) == pytest.approx(n / (n - 1), rel=1e-6)

    def test_cycle_gap(self):
        # λ₂(C_n) = 1 - cos(2π/n).
        n = 12
        assert spectral_gap(cycle_graph(n)) == pytest.approx(
            1 - np.cos(2 * np.pi / n), rel=1e-6
        )

    def test_path_gap_small(self):
        assert spectral_gap(path_graph(50)) < 0.01

    def test_expander_gap_large(self):
        g = permutation_regular_graph(200, 10, rng=1)
        assert spectral_gap(g) > 0.2

    def test_disconnected_raises(self):
        with pytest.raises(ValueError):
            spectral_gap(Graph(4, [(0, 1), (2, 3)]))

    def test_single_vertex_convention(self):
        assert spectral_gap(Graph(1, [(0, 0)])) == 1.0

    def test_sparse_path_matches_dense(self):
        """The Lanczos path (n > threshold) agrees with the dense solver."""
        g = permutation_regular_graph(700, 8, rng=2)
        sparse_gap = spectral_gap(g)
        dense_spec = laplacian_spectrum(g)
        assert sparse_gap == pytest.approx(float(dense_spec[1]), abs=1e-5)

    def test_gap_shrinks_with_weaker_bridge(self):
        strong = dumbbell_graph(40, 8, bridges=20, rng=0)
        weak = dumbbell_graph(40, 8, bridges=1, rng=0)
        assert spectral_gap(weak) < spectral_gap(strong)


class TestComponentGaps:
    def test_per_component(self):
        g, _ = planted_expander_components([30, 40], 8, rng=0)
        gaps = component_spectral_gaps(g)
        assert len(gaps) == 2
        assert all(gap > 0.1 for gap in gaps)

    def test_min_component_gap(self):
        g, _ = planted_expander_components([30, 40], 8, rng=0)
        assert min_component_spectral_gap(g) == pytest.approx(
            min(component_spectral_gaps(g)), abs=1e-12
        )

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            min_component_spectral_gap(Graph(0, []))


class TestTwoSidedGap:
    def test_bipartite_has_zero_two_sided_gap(self):
        # C_4 is bipartite: μ_n = -1, so the two-sided gap vanishes even
        # though λ₂ > 0.
        from repro.graph import two_sided_spectral_gap

        g = cycle_graph(4)
        assert two_sided_spectral_gap(g) == pytest.approx(0.0, abs=1e-9)
        assert spectral_gap(g) > 0.5

    def test_never_exceeds_one_sided(self):
        from repro.graph import two_sided_spectral_gap

        for seed in range(3):
            g = permutation_regular_graph(40, 8, rng=seed)
            assert two_sided_spectral_gap(g) <= spectral_gap(g) + 1e-9

    def test_single_vertex(self):
        from repro.graph import two_sided_spectral_gap

        assert two_sided_spectral_gap(Graph(1, [(0, 0)])) == 1.0


class TestCheeger:
    def test_bounds_ordering(self):
        low, high = cheeger_bounds(0.5)
        assert low == pytest.approx(0.25)
        assert high == pytest.approx(1.0)
        assert low <= high

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            cheeger_bounds(2.5)


class TestGapConnectivityEquivalence:
    def test_connected_iff_positive_gap(self):
        connected = permutation_regular_graph(30, 6, rng=0)
        disconnected = Graph(4, [(0, 1), (2, 3)])
        assert is_connected_via_gap(connected)
        assert not is_connected_via_gap(disconnected)
