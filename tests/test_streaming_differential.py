"""Differential suite: streamed labels vs from-scratch pipeline labels.

The tentpole correctness gate for the streaming subsystem: at *every*
checkpoint of an update stream, the labels decoded from the maintained
AGM sketch must be bit-identical (canonical form) to a from-scratch
``mpc_connected_components`` run on the materialised multiset.  The
churn pattern sweeps all registered generator families; the remaining
patterns (including the component-split adversary, whose exact signed
cancellations are the hard case) run on a representative subset.
"""

import numpy as np
import pytest

from repro.bench.workloads import family_names
from repro.core import PipelineConfig, mpc_connected_components
from repro.graph import canonical_labels
from repro.streaming import StreamingConnectivity, StreamWorkload, stream_pattern_names

SEED = 23
GAP_BOUND = 0.1
CONFIG = PipelineConfig(
    delta=0.5, expander_degree=4, max_walk_length=32, oversample=4, max_phases=2
)
#: Dense/structured families stay small so the sweep finishes fast
#: (grid/hypercube round n to side**2 / 2**dim internally).
SIZES = {"complete": 48, "hypercube": 64}


def _assert_stream_matches_scratch(family: str, pattern: str, n: int):
    stream = StreamWorkload(family, n, pattern, batches=4).build(SEED)
    conn = StreamingConnectivity(
        stream.n,
        rng=SEED,
        spectral_gap_bound=GAP_BOUND,
        config=CONFIG,
    )
    for step, batch in enumerate(stream):
        conn.apply(batch)
        streamed = conn.query()
        scratch = mpc_connected_components(
            conn.current_graph(), GAP_BOUND, config=CONFIG, rng=SEED
        ).labels
        assert np.array_equal(streamed, canonical_labels(scratch)), (
            f"{pattern}:{family} diverged from the from-scratch oracle at "
            f"checkpoint {step}"
        )


@pytest.mark.parametrize("family", family_names())
def test_churn_stream_matches_scratch_all_families(family):
    _assert_stream_matches_scratch(family, "churn", SIZES.get(family, 96))


@pytest.mark.parametrize("pattern", stream_pattern_names())
@pytest.mark.parametrize("family", ["path", "dumbbell", "erdos_renyi"])
def test_all_patterns_match_scratch(family, pattern):
    _assert_stream_matches_scratch(family, pattern, 64)


def test_component_split_adversary_exact_cancellation():
    """The adversary's full-cut deletion only decodes correctly if every
    signed update cancelled exactly — spot-check the split is clean."""
    stream = StreamWorkload("path", 80, "component_split").build(SEED)
    conn = StreamingConnectivity(stream.n, rng=SEED, config=CONFIG)
    batches = list(stream)
    for batch in batches[:-1]:  # everything up to the re-merge bridge
        conn.apply(batch)
    labels = conn.query()
    truth = canonical_labels(
        mpc_connected_components(
            conn.current_graph(), GAP_BOUND, config=CONFIG, rng=SEED
        ).labels
    )
    assert np.array_equal(labels, truth)
    conn.apply(batches[-1])
    assert np.array_equal(
        conn.query(),
        canonical_labels(
            mpc_connected_components(
                conn.current_graph(), GAP_BOUND, config=CONFIG, rng=SEED
            ).labels
        ),
    )
