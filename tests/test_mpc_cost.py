"""Tests for the MPC round cost model."""

import math

import pytest

from repro.mpc import MPCCostModel


class TestCostModel:
    def test_sort_fits_single_machine(self):
        model = MPCCostModel(1000)
        assert model.sort_rounds(500) == 1

    def test_sort_log_s_n(self):
        model = MPCCostModel(10)
        assert model.sort_rounds(1000) == 3  # log_10 1000

    def test_sort_rounds_matches_delta(self):
        """With s = N^δ, sort costs about 1/δ rounds (the paper's O(1/δ))."""
        n = 10**6
        for delta in (0.25, 0.5):
            s = math.ceil(n**delta)
            model = MPCCostModel(s)
            assert model.sort_rounds(n) == pytest.approx(1 / delta, abs=1)

    def test_search_equals_sort(self):
        model = MPCCostModel(16)
        assert model.search_rounds(5000) == model.sort_rounds(5000)

    def test_shuffle_is_one(self):
        assert MPCCostModel(8).shuffle_rounds() == 1

    def test_machines_for(self):
        model = MPCCostModel(100)
        assert model.machines_for(1000) == 10
        assert model.machines_for(1001) == 11
        assert model.machines_for(0) == 1

    def test_broadcast_small(self):
        assert MPCCostModel(100).broadcast_rounds(50) == 1

    def test_broadcast_tree_depth(self):
        model = MPCCostModel(10)
        # 10^4 items -> 1000 machines -> log_10(1000) = 3 rounds.
        assert model.broadcast_rounds(10_000) == 3

    def test_pointer_jumping(self):
        model = MPCCostModel(10)
        assert model.pointer_jumping_rounds(1) == 1
        assert model.pointer_jumping_rounds(8) == 3
        assert model.pointer_jumping_rounds(9) == 4

    def test_rejects_tiny_memory(self):
        with pytest.raises(ValueError):
            MPCCostModel(1)

    def test_rejects_negative_items(self):
        with pytest.raises(ValueError):
            MPCCostModel(8).sort_rounds(-1)
