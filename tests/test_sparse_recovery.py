"""Tests for one-sparse and s-sparse recovery and the L0 sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import L0Sampler, OneSparseRecovery, SparseRecovery


class TestOneSparse:
    def test_zero_vector(self):
        r = OneSparseRecovery.fresh(100, rng=0)
        assert r.is_zero
        assert r.decode() is None

    def test_single_update(self):
        r = OneSparseRecovery.fresh(100, rng=0)
        r.update(42, 7)
        assert r.decode() == (42, 7)

    def test_negative_weight(self):
        r = OneSparseRecovery.fresh(100, rng=0)
        r.update(13, -3)
        assert r.decode() == (13, -3)

    def test_cancellation_back_to_zero(self):
        r = OneSparseRecovery.fresh(100, rng=0)
        r.update(5, 2)
        r.update(5, -2)
        assert r.is_zero

    def test_two_sparse_rejected(self):
        r = OneSparseRecovery.fresh(100, rng=0)
        r.update(3, 1)
        r.update(90, 1)
        assert r.decode() is None

    def test_adversarial_two_sparse_fingerprint(self):
        """(i-1, w) and (i+1, w) average to index i — the moment test alone
        would accept; the fingerprint must reject."""
        for seed in range(10):
            r = OneSparseRecovery.fresh(1000, rng=seed)
            r.update(10, 5)
            r.update(12, 5)
            assert r.decode() is None

    def test_merge_linearity(self):
        a = OneSparseRecovery.fresh(50, rng=3)
        b = OneSparseRecovery(
            universe=a.universe, fingerprint_base=a.fingerprint_base
        )
        a.update(7, 4)
        b.update(7, -3)
        merged = a.merge(b)
        assert merged.decode() == (7, 1)

    def test_merge_seed_mismatch(self):
        a = OneSparseRecovery.fresh(50, rng=0)
        b = OneSparseRecovery.fresh(50, rng=1)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_out_of_universe(self):
        r = OneSparseRecovery.fresh(10, rng=0)
        with pytest.raises(ValueError):
            r.update(10, 1)

    @settings(max_examples=40, deadline=None)
    @given(
        index=st.integers(0, 999),
        weight=st.integers(-50, 50).filter(lambda w: w != 0),
        seed=st.integers(0, 10),
    )
    def test_roundtrip_property(self, index, weight, seed):
        r = OneSparseRecovery.fresh(1000, rng=seed)
        r.update(index, weight)
        assert r.decode() == (index, weight)


class TestSparseRecovery:
    def test_recovers_small_support(self):
        r = SparseRecovery.fresh(1000, sparsity=8, rng=0)
        support = {17: 3, 400: -2, 999: 5}
        for i, w in support.items():
            r.update(i, w)
        assert r.decode() == support

    def test_empty_support(self):
        r = SparseRecovery.fresh(100, sparsity=4, rng=0)
        assert r.decode() == {}

    def test_dense_vector_rejected(self):
        r = SparseRecovery.fresh(1000, sparsity=2, rng=1)
        rng = np.random.default_rng(0)
        idx = rng.choice(1000, size=50, replace=False)
        r.update_many(idx, np.ones(50, dtype=np.int64))
        assert r.decode() is None

    def test_merge(self):
        a = SparseRecovery.fresh(500, sparsity=4, rng=2)
        b = SparseRecovery(
            universe=a.universe, sparsity=a.sparsity,
            rows=[[type(c)(universe=c.universe, fingerprint_base=c.fingerprint_base)
                   for c in row] for row in a.rows],
            hashes=a.hashes,
        )
        a.update(10, 1)
        b.update(10, -1)
        b.update(20, 7)
        merged = a.merge(b)
        assert merged.decode() == {20: 7}

    def test_sample_nonzero(self):
        r = SparseRecovery.fresh(100, sparsity=4, rng=3)
        r.update(55, 9)
        assert r.sample_nonzero() == (55, 9)

    @pytest.mark.parametrize("seed", range(5))
    def test_recovery_at_exact_sparsity(self, seed):
        rng = np.random.default_rng(seed)
        s = 6
        r = SparseRecovery.fresh(10_000, sparsity=s, rng=seed)
        idx = rng.choice(10_000, size=s, replace=False)
        weights = rng.integers(1, 10, size=s)
        r.update_many(idx, weights)
        decoded = r.decode()
        assert decoded == {int(i): int(w) for i, w in zip(idx, weights)}


class TestL0Sampler:
    def test_zero_vector_returns_none(self):
        s = L0Sampler.fresh(1000, rng=0)
        assert s.sample() is None

    def test_single_entry(self):
        s = L0Sampler.fresh(1000, rng=0)
        s.update(123, 4)
        assert s.sample() == (123, 4)

    @pytest.mark.parametrize("support_size", [1, 10, 100, 500])
    def test_dense_supports_sample_valid(self, support_size):
        rng = np.random.default_rng(support_size)
        s = L0Sampler.fresh(2000, rng=1)
        idx = rng.choice(2000, size=support_size, replace=False)
        s.update_many(idx, np.ones(support_size, dtype=np.int64))
        result = s.sample()
        assert result is not None
        index, weight = result
        assert index in set(idx.tolist())
        assert weight == 1

    def test_merge_cancels(self):
        a = L0Sampler.fresh(500, rng=2)
        b = L0Sampler(universe=a.universe, level_hash=a.level_hash,
                      levels=[type(l)(universe=l.universe, sparsity=l.sparsity,
                                      rows=[[type(c)(universe=c.universe,
                                                     fingerprint_base=c.fingerprint_base)
                                             for c in row] for row in l.rows],
                                      hashes=l.hashes)
                              for l in a.levels])
        a.update(42, 1)
        a.update(99, 1)
        b.update(42, -1)
        merged = a.merge(b)
        assert merged.sample() == (99, 1)

    def test_merge_mismatch_rejected(self):
        a = L0Sampler.fresh(100, rng=0)
        b = L0Sampler.fresh(100, rng=5)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_word_count_polylog(self):
        small = L0Sampler.fresh(2**10, rng=0).word_count()
        large = L0Sampler.fresh(2**20, rng=0).word_count()
        # Universe grew 1024x; the sketch only by ~2x (one extra level
        # per doubling).
        assert large < 4 * small


class TestStreamingEdgeCases:
    """Signed-update paths the streaming deletes exercise."""

    def test_one_sparse_update_many_negative_total(self):
        r = OneSparseRecovery.fresh(200, rng=3)
        r.update_many(np.array([17, 17, 17]), np.array([-2, -1, -2]))
        assert r.decode() == (17, -5)

    def test_one_sparse_update_many_cancels_to_zero(self):
        r = OneSparseRecovery.fresh(200, rng=3)
        idx = np.array([9, 40, 9, 40])
        r.update_many(idx, np.array([3, 1, -3, -1]))
        assert r.is_zero
        assert r.decode() is None

    def test_l0_update_many_negative_weights(self):
        s = L0Sampler.fresh(1000, rng=4)
        idx = np.array([10, 20, 30])
        s.update_many(idx, np.array([-1, -1, -1], dtype=np.int64))
        result = s.sample()
        assert result is not None
        index, weight = result
        assert index in {10, 20, 30}
        assert weight == -1

    def test_l0_update_many_exact_cancellation(self):
        """A delete stream that mirrors its insert stream must leave the
        sampler indistinguishable from fresh — the streaming-connectivity
        invariant at the sketch's base."""
        rng = np.random.default_rng(5)
        s = L0Sampler.fresh(5000, rng=6)
        idx = rng.choice(5000, size=64, replace=False)
        weights = rng.integers(1, 8, size=64)
        s.update_many(idx, weights)
        s.update_many(idx, -weights)
        assert s.sample() is None

    def test_l0_partial_cancellation_survivor(self):
        s = L0Sampler.fresh(1000, rng=7)
        s.update_many(np.array([1, 2, 3]), np.array([1, 1, 1], dtype=np.int64))
        s.update_many(np.array([1, 3]), np.array([-1, -1], dtype=np.int64))
        assert s.sample() == (2, 1)

    def test_sparse_recovery_mixed_sign_support(self):
        r = SparseRecovery.fresh(500, sparsity=4, rng=8)
        r.update_many(np.array([5, 60, 300]), np.array([2, -7, 4]))
        assert r.decode() == {5: 2, 60: -7, 300: 4}
