"""Tests for the paper's concise range notation (Section 2)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import Interval


class TestConstruction:
    def test_pm_matches_paper_definition(self):
        assert Interval.pm(5, 2) == Interval(3, 7)

    def test_pm_rejects_negative_delta(self):
        with pytest.raises(ValueError):
            Interval.pm(1, -0.5)

    def test_one_pm(self):
        iv = Interval.one_pm(0.25)
        assert iv.low == pytest.approx(0.75)
        assert iv.high == pytest.approx(1.25)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Interval(float("nan"), 1.0)

    def test_point(self):
        assert Interval.point(3).width == 0
        assert Interval.point(3).center == 3


class TestPaperWorkedExamples:
    def test_square_example(self):
        # Paper, Section 2: J(3 ± 2)²K = [1, 25].
        assert Interval.pm(3, 2) ** 2 == Interval(1, 25)

    def test_quotient_example(self):
        # Paper, Section 2: J(2 ± 1)/(4 ± 2)K = [1/6, 3/2].
        result = Interval.pm(2, 1) / Interval.pm(4, 2)
        assert result.low == pytest.approx(1 / 6)
        assert result.high == pytest.approx(3 / 2)


class TestArithmetic:
    def test_addition_with_scalar(self):
        assert Interval(1, 2) + 3 == Interval(4, 5)
        assert 3 + Interval(1, 2) == Interval(4, 5)

    def test_subtraction(self):
        assert Interval(1, 2) - Interval(0, 1) == Interval(0, 2)
        assert 5 - Interval(1, 2) == Interval(3, 4)

    def test_multiplication_negative_operands(self):
        assert Interval(-2, 3) * Interval(-1, 4) == Interval(-8, 12)

    def test_division_by_zero_straddling_interval(self):
        with pytest.raises(ZeroDivisionError):
            Interval(1, 2) / Interval(-1, 1)

    def test_rdiv(self):
        assert 1 / Interval(2, 4) == Interval(0.25, 0.5)

    def test_power_zero(self):
        assert Interval(2, 3) ** 0 == Interval(1, 1)

    def test_power_rejects_negative(self):
        with pytest.raises(ValueError):
            Interval(1, 2) ** -1

    def test_power_rejects_float(self):
        with pytest.raises(TypeError):
            Interval(1, 2) ** 0.5

    def test_union(self):
        assert Interval(0, 1).union(Interval(3, 4)) == Interval(0, 4)


class TestContainment:
    def test_contains_number(self):
        assert Interval(1, 3).contains(2)
        assert not Interval(1, 3).contains(4)

    def test_contains_interval(self):
        assert Interval(0, 10).contains(Interval(2, 5))
        assert not Interval(0, 10).contains(Interval(5, 11))

    def test_slack_relaxes_bounds(self):
        assert not Interval(1, 2).contains(2.1)
        assert Interval(1, 2).contains(2.1, slack=0.1)

    def test_intersects(self):
        assert Interval(0, 2).intersects(Interval(1, 3))
        assert not Interval(0, 1).intersects(Interval(2, 3))


@given(
    center=st.floats(-100, 100),
    delta=st.floats(0, 50),
    scalar=st.floats(-10, 10).filter(lambda x: abs(x) > 1e-6),
)
def test_scalar_multiplication_preserves_containment(center, delta, scalar):
    """x ∈ I implies s·x ∈ s·I for every scalar s (property of the J·K calculus)."""
    iv = Interval.pm(center, delta)
    scaled = iv * scalar
    assert scaled.contains(center * scalar) or math.isclose(
        scaled.low, center * scalar, abs_tol=1e-9
    ) or math.isclose(scaled.high, center * scalar, abs_tol=1e-9)


@given(
    a_lo=st.floats(-50, 50),
    a_w=st.floats(0, 20),
    b_lo=st.floats(-50, 50),
    b_w=st.floats(0, 20),
    x=st.floats(0, 1),
    y=st.floats(0, 1),
)
def test_product_is_inclusion_monotone(a_lo, a_w, b_lo, b_w, x, y):
    """Interval product contains all pointwise products of members."""
    a = Interval(a_lo, a_lo + a_w)
    b = Interval(b_lo, b_lo + b_w)
    pa = a.low + x * a.width
    pb = b.low + y * b.width
    assert (a * b).contains(pa * pb, slack=1e-9) or abs(pa * pb) < 1e-12


@given(
    lo=st.floats(-100, 100),
    w=st.floats(0, 100),
)
def test_negation_involution(lo, w):
    iv = Interval(lo, lo + w)
    assert -(-iv) == iv
