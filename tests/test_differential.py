"""Pipeline-level differential test harness.

Runs the full Theorem 4 pipeline on *all four* execution backends
(accounting-only local, enforced sharded, true-parallel process pool,
wire-protocol rpc)
plus the four classical baselines across every registered generator
family and asserts canonical-label agreement with the union-find ground
truth.  On top of the correctness differential:

* **Seeded determinism** — identical RNG seeds must give identical
  labels, round counts, and phase breakdowns on every backend, across
  δ ∈ {0.3, 0.5, 0.7};
* **Round certification at pipeline granularity** — every
  ``MPCEngine`` charge emitted during ``mpc_connected_components`` must
  cover the ``ShardedBackend`` exchanges it materialised, within the
  declared round budget (extending the primitive-level certification of
  ``tests/test_mpc_cluster.py`` to the whole algorithm);
* **Scale** — the ``slow`` tier runs ``n = 10^5`` end to end on the
  sharded backend with enforced caps, far beyond the per-item
  ``Cluster`` executor's practical range.
"""

import numpy as np
import pytest

import repro
from repro.baselines import (
    exponentiation_components,
    min_label_propagation,
    random_mate_components,
    shiloach_vishkin_components,
)
from repro.bench.workloads import Workload, family_names
from repro.graph import canonical_labels, components_agree, use_csr
from repro.graph.union_find import DisjointSetUnion
from repro.mpc import MPCEngine, ProcessBackend, RpcBackend, ShardedBackend

#: Laptop-scale constants: short capped walks under-mix on the weakly
#: connected families, and the honest verification broadcast finishes the
#: job — output labels stay exact either way, which is what we test.
CONFIG = repro.PipelineConfig(
    delta=0.5, expander_degree=4, max_walk_length=32, oversample=4, max_phases=2
)
GAP_BOUND = 0.1
SEED = 23

#: Family-specific sizes: keep every pipeline run sub-second while still
#: producing multi-component / multi-shard structure.
SIZE_OVERRIDES = {"complete": 64, "hypercube": 64}

BASELINES = {
    "shiloach_vishkin": lambda graph: shiloach_vishkin_components(graph).labels,
    "label_propagation": lambda graph: min_label_propagation(graph).labels,
    "random_mate": lambda graph: random_mate_components(graph, rng=SEED).labels,
    "graph_exponentiation": lambda graph: exponentiation_components(graph).labels,
}


def union_find_truth(graph) -> np.ndarray:
    """Sequential ground truth: DSU over the edge list."""
    dsu = DisjointSetUnion(graph.n)
    dsu.union_edges(graph.edges)
    return canonical_labels(dsu.labels())


def build(family: str, n: int = 192):
    return Workload(family, SIZE_OVERRIDES.get(family, n)).build(SEED)


def run_pipeline(graph, backend: str, *, delta: float = 0.5, rng: int = SEED):
    config = CONFIG.with_overrides(delta=delta)
    if backend == "process":
        # Force every operation through the worker pool (the default
        # min_parallel_items would keep laptop-scale ops on the serial
        # kernels and leave the IPC path untested).
        backend = ProcessBackend(workers=2, min_parallel_items=0)
    elif backend == "process-noarena":
        # Same pool, transient per-operation segments: the arena toggle
        # must never change labels, rounds, or counters.
        backend = ProcessBackend(workers=2, min_parallel_items=0, arena=False)
    elif backend == "rpc":
        # Force every operation across the wire protocol for the same
        # reason min_parallel_items is zeroed above.
        backend = RpcBackend(workers=2, min_wire_items=0)
    try:
        return repro.mpc_connected_components(
            graph, GAP_BOUND, config=config, rng=rng, backend=backend
        )
    finally:
        if isinstance(backend, (ProcessBackend, RpcBackend)):
            backend.close()


# ---------------------------------------------------------------------------
# Differential: pipeline (all three backends) + baselines vs union-find truth
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("family", family_names())
class TestDifferential:
    def test_pipeline_all_backends_match_truth(self, family):
        graph = build(family)
        truth = union_find_truth(graph)
        local = run_pipeline(graph, "local")
        sharded = run_pipeline(graph, "sharded")
        process = run_pipeline(graph, "process")
        noarena = run_pipeline(graph, "process-noarena")
        rpc = run_pipeline(graph, "rpc")
        assert components_agree(local.labels, truth)
        assert components_agree(sharded.labels, truth)
        assert components_agree(process.labels, truth)
        assert components_agree(rpc.labels, truth)
        # Stronger than agreement: the backends are bit-identical, with
        # and without the shared-memory arena, and across the wire.
        assert np.array_equal(local.labels, sharded.labels)
        assert np.array_equal(local.labels, process.labels)
        assert np.array_equal(local.labels, noarena.labels)
        assert np.array_equal(local.labels, rpc.labels)
        assert (local.rounds == sharded.rounds == process.rounds
                == noarena.rounds == rpc.rounds)

    @pytest.mark.parametrize("baseline", sorted(BASELINES))
    def test_baselines_match_truth(self, family, baseline):
        graph = build(family)
        truth = union_find_truth(graph)
        assert components_agree(BASELINES[baseline](graph), truth)


# ---------------------------------------------------------------------------
# CSR axis: the gather fast path on vs off, per family, per backend
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("family", family_names())
class TestCSRDifferential:
    """The CSR gather fast path must be invisible everywhere but the
    ``csr`` counters: labels, rounds, exchanges, and byte counts are
    bit-identical to the sort-based exchange path on every family and
    every backend."""

    def _sharded(self, graph, enabled: bool):
        backend = ShardedBackend()
        with use_csr(enabled):
            result = repro.mpc_connected_components(
                graph, GAP_BOUND, config=CONFIG, rng=SEED, backend=backend
            )
        return result, backend.stats()

    def test_sharded_counters_identical(self, family):
        graph = build(family)
        off, off_stats = self._sharded(graph, False)
        on, on_stats = self._sharded(graph, True)
        assert components_agree(off.labels, union_find_truth(graph))
        assert np.array_equal(on.labels, off.labels)
        assert on.rounds == off.rounds
        assert (
            on_stats.exchanges,
            on_stats.bytes_exchanged,
            on_stats.shard_count,
            on_stats.peak_shard_load,
        ) == (
            off_stats.exchanges,
            off_stats.bytes_exchanged,
            off_stats.shard_count,
            off_stats.peak_shard_load,
        )
        # Only the csr counters may differ: the fast path engages when
        # on and never when off.
        assert on_stats.csr["csr_builds"] > 0
        assert on_stats.csr["csr_gathers"] > 0
        assert all(v == 0 for v in off_stats.csr.values())

    def test_pool_backends_match_sort_reference(self, family):
        graph = build(family)
        off, _ = self._sharded(graph, False)
        with use_csr(True):
            for backend in ("local", "process", "process-noarena", "rpc"):
                result = run_pipeline(graph, backend)
                assert np.array_equal(result.labels, off.labels), backend
                assert result.rounds == off.rounds, backend


# ---------------------------------------------------------------------------
# Seeded determinism across backends and deltas
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("delta", [0.3, 0.5, 0.7])
class TestSeededDeterminism:
    def _summaries(self, graph, backend, delta):
        result = run_pipeline(graph, backend, delta=delta)
        return (
            result.labels,
            result.rounds,
            [p.to_json() for p in result.engine.phase_summaries()],
        )

    def test_same_seed_same_run(self, delta):
        graph = build("permutation_regular", 256)
        for backend in ("local", "sharded", "process"):
            labels_a, rounds_a, phases_a = self._summaries(graph, backend, delta)
            labels_b, rounds_b, phases_b = self._summaries(graph, backend, delta)
            assert np.array_equal(labels_a, labels_b)
            assert rounds_a == rounds_b
            assert phases_a == phases_b

    def test_backends_agree_exactly(self, delta):
        graph = build("dumbbell", 256)
        labels_l, rounds_l, phases_l = self._summaries(graph, "local", delta)
        labels_s, rounds_s, phases_s = self._summaries(graph, "sharded", delta)
        labels_p, rounds_p, phases_p = self._summaries(graph, "process", delta)
        labels_n, rounds_n, phases_n = self._summaries(
            graph, "process-noarena", delta
        )
        labels_r, rounds_r, phases_r = self._summaries(graph, "rpc", delta)
        assert np.array_equal(labels_l, labels_s)
        assert np.array_equal(labels_l, labels_p)
        assert np.array_equal(labels_l, labels_n)
        assert np.array_equal(labels_l, labels_r)
        assert rounds_l == rounds_s == rounds_p == rounds_n == rounds_r
        # Phase breakdowns agree up to the data-plane exchange counters
        # (zero on the accounting-only backend by definition); the two
        # enforced backends must agree on those too.
        def strip(phases):
            return [{k: v for k, v in p.items() if k != "exchanges"}
                    for p in phases]

        assert strip(phases_l) == strip(phases_s)
        assert phases_s == phases_p
        assert phases_s == phases_n
        assert phases_s == phases_r

    def test_different_seed_different_randomness(self, delta):
        # Canonical labels are seed-invariant (they only encode the true
        # partition), but the walk targets feeding the pipeline are not:
        # identical batches across seeds would mean the RNG is not actually
        # threaded through.
        graph = build("permutation_regular", 256)
        a = run_pipeline(graph, "sharded", delta=delta, rng=1)
        b = run_pipeline(graph, "sharded", delta=delta, rng=2)
        assert np.array_equal(a.labels, b.labels)  # partition is seed-invariant
        assert not np.array_equal(
            a.randomized.batches[0], b.randomized.batches[0]
        ), "walk batches must depend on the seed"


# ---------------------------------------------------------------------------
# Round certification at pipeline granularity
# ---------------------------------------------------------------------------


def certified_run(n=1024, memory=2048):
    graph = Workload("permutation_regular", n, {"degree": 6}).build(SEED)
    backend = ShardedBackend()
    engine = MPCEngine(memory, backend=backend)
    result = repro.mpc_connected_components(
        graph, GAP_BOUND, config=CONFIG, rng=SEED, engine=engine
    )
    return result, engine, backend


class TestPipelineRoundCertification:
    """Every charge must cover the exchanges it materialised.

    A charge's exchange budget is its declared rounds plus a constant
    slack of 2: one barrier for a stabilisation probe inherited from the
    preceding stage (detecting broadcast convergence costs one
    non-improving level the engine never charges) and one for splitter /
    placement metadata folded into a following charge.
    """

    def test_exchanges_within_declared_rounds(self):
        result, engine, backend = certified_run()
        assert backend.stats().exchanges > 0  # multi-shard run really moved data
        for charge in engine.charges:
            assert charge.exchanges <= charge.rounds + 2, (
                f"{charge.phase}/{charge.label}: {charge.exchanges} exchanges "
                f"exceed {charge.rounds} declared rounds"
            )

    def test_total_exchanges_within_total_rounds(self):
        result, engine, backend = certified_run()
        assert backend.stats().exchanges <= result.rounds

    def test_every_exchange_is_attributed(self):
        result, engine, backend = certified_run()
        attributed = sum(c.exchanges for c in engine.charges)
        # At most the trailing stabilisation probe of the final broadcast
        # may land after the last charge.
        assert 0 <= backend.stats().exchanges - attributed <= 1

    def test_every_stage_materialises_exchanges(self):
        result, engine, backend = certified_run()
        by_phase = {p.name: p.exchanges for p in engine.phase_summaries()}
        assert by_phase["Step3-RandomGraphCC"] > 0
        assert by_phase["Verify"] > 0

    def test_phase_exchanges_within_phase_rounds(self):
        result, engine, backend = certified_run()
        for phase in engine.phase_summaries():
            assert phase.exchanges <= phase.rounds + phase.charges

    def test_charges_match_local_backend_charges(self):
        """The sharded data plane must not change the control plane: the
        charge sequence (labels, kinds, rounds) is backend-invariant."""
        graph = Workload("permutation_regular", 1024, {"degree": 6}).build(SEED)
        engine_l = MPCEngine(2048)
        repro.mpc_connected_components(
            graph, GAP_BOUND, config=CONFIG, rng=SEED, engine=engine_l
        )
        _, engine_s, _ = certified_run()
        seq_l = [(c.label, c.kind, c.rounds, c.items) for c in engine_l.charges]
        seq_s = [(c.label, c.kind, c.rounds, c.items) for c in engine_s.charges]
        assert seq_l == seq_s


# ---------------------------------------------------------------------------
# Scale: beyond the Cluster executor's range
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_sharded_pipeline_at_1e5_matches_local():
    """Acceptance: the full pipeline runs end to end on the sharded
    backend with enforced per-shard caps at n = 10^5 and produces labels
    identical to the local backend."""
    n = 100_000
    graph = Workload("permutation_regular", n, {"degree": 6}).build(SEED)
    config = CONFIG.with_overrides(delta=0.35)
    truth = union_find_truth(graph)

    local = repro.mpc_connected_components(
        graph, GAP_BOUND, config=config, rng=SEED, backend="local"
    )
    backend = ShardedBackend()
    engine = MPCEngine.for_delta(graph.n + graph.m, 0.35, backend=backend)
    sharded = repro.mpc_connected_components(
        graph, GAP_BOUND, config=config, rng=SEED, engine=engine
    )

    assert np.array_equal(local.labels, sharded.labels)
    assert components_agree(sharded.labels, truth)
    stats = backend.stats()
    assert stats.shard_count == engine.peak_machines > 100
    assert 0 < stats.exchanges <= sharded.rounds
    assert stats.peak_shard_load <= backend.shard_memory


@pytest.mark.slow
def test_adaptive_runs_on_sharded_backend():
    graph = Workload("dumbbell", 512).build(SEED)
    result = repro.mpc_connected_components_adaptive(
        graph, config=CONFIG, rng=SEED, backend="sharded"
    )
    assert components_agree(result.labels, union_find_truth(graph))


def test_backend_with_engine_is_rejected():
    graph = build("cycle", 64)
    engine = MPCEngine(256)
    with pytest.raises(ValueError):
        repro.mpc_connected_components(
            graph, GAP_BOUND, config=CONFIG, rng=SEED, engine=engine,
            backend="sharded",
        )
    with pytest.raises(ValueError):
        repro.mpc_connected_components_adaptive(
            graph, config=CONFIG, rng=SEED, engine=engine, backend="sharded"
        )
