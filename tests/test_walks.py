"""Tests for random walks and mixing times (Section 2.2)."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    empirical_mixing_time,
    lazy_random_walk,
    mixing_time_bound,
    path_graph,
    permutation_regular_graph,
    random_walk,
    spectral_gap,
    stationary_distribution,
    tv_distance,
    walk_distribution,
    walk_matrix,
)


class TestWalkMatrix:
    def test_column_stochastic(self):
        g = permutation_regular_graph(20, 4, rng=0)
        mat = walk_matrix(g).toarray()
        assert np.allclose(mat.sum(axis=0), 1.0)

    def test_lazy_diagonal(self):
        g = cycle_graph(5)
        lazy = walk_matrix(g, lazy=True).toarray()
        assert np.allclose(np.diag(lazy), 0.5)

    def test_stationary_is_fixed_point(self):
        g = Graph(3, [(0, 1), (1, 2), (1, 2)])
        pi = stationary_distribution(g)
        mat = walk_matrix(g)
        assert np.allclose(mat @ pi, pi)
        lazy = walk_matrix(g, lazy=True)
        assert np.allclose(lazy @ pi, pi)

    def test_isolated_vertex_rejected(self):
        with pytest.raises(ValueError):
            walk_matrix(Graph(2, [(0, 0)]))


class TestDistributions:
    def test_walk_distribution_sums_to_one(self):
        g = permutation_regular_graph(15, 4, rng=0)
        dist = walk_distribution(g, 0, 7)
        assert dist.sum() == pytest.approx(1.0)

    def test_length_zero_is_point_mass(self):
        g = cycle_graph(4)
        dist = walk_distribution(g, 2, 0)
        assert dist[2] == 1.0

    def test_bipartite_simple_walk_oscillates(self):
        # On C_4 (bipartite) the plain walk never mixes; the lazy one does.
        g = cycle_graph(4)
        pi = stationary_distribution(g)
        plain = walk_distribution(g, 0, 101)
        lazy = walk_distribution(g, 0, 101, lazy=True)
        assert tv_distance(plain, pi) > 0.4
        assert tv_distance(lazy, pi) < 1e-3

    def test_tv_distance_properties(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert tv_distance(p, q) == 1.0
        assert tv_distance(p, p) == 0.0
        with pytest.raises(ValueError):
            tv_distance(p, np.array([1.0]))


class TestTrajectories:
    def test_walk_length(self):
        g = cycle_graph(10)
        path = random_walk(g, 0, 20, rng=0)
        assert path.shape == (21,)
        assert path[0] == 0

    def test_walk_respects_adjacency(self):
        g = cycle_graph(10)
        path = random_walk(g, 0, 50, rng=1)
        steps = np.abs(np.diff(path))
        assert np.all((steps == 1) | (steps == 9))

    def test_lazy_walk_can_stay(self):
        g = cycle_graph(10)
        path = lazy_random_walk(g, 0, 100, rng=2)
        assert np.any(np.diff(path) == 0)

    def test_stuck_vertex_raises(self):
        g = Graph(2, [(0, 0)])
        with pytest.raises(ValueError):
            random_walk(g, 1, 1, rng=0)

    def test_reproducible(self):
        g = permutation_regular_graph(30, 6, rng=0)
        a = random_walk(g, 0, 25, rng=9)
        b = random_walk(g, 0, 25, rng=9)
        assert np.array_equal(a, b)


class TestMixingTime:
    def test_bound_monotone_in_gap(self):
        assert mixing_time_bound(1000, 0.5) < mixing_time_bound(1000, 0.05)

    def test_bound_monotone_in_gamma(self):
        assert mixing_time_bound(1000, 0.3, 1e-6) > mixing_time_bound(1000, 0.3, 1e-2)

    def test_empirical_vs_bound_on_expander(self):
        """Proposition 2.2: the bound dominates the true mixing time."""
        g = permutation_regular_graph(100, 8, rng=3)
        gamma = 1e-3
        bound = mixing_time_bound(g.n, spectral_gap(g), gamma)
        actual = empirical_mixing_time(g, gamma)
        assert actual <= bound

    def test_complete_graph_mixes_fast(self):
        assert empirical_mixing_time(complete_graph(30), 1e-3) <= 25

    def test_path_mixes_slowly(self):
        fast = empirical_mixing_time(complete_graph(30), 1e-2)
        slow = empirical_mixing_time(path_graph(30), 1e-2)
        assert slow > 5 * fast

    def test_subset_starts_lower_bound(self):
        g = cycle_graph(20)
        partial = empirical_mixing_time(g, 1e-2, starts=np.array([0]))
        full = empirical_mixing_time(g, 1e-2)
        assert partial <= full

    def test_disconnected_never_mixes(self):
        g = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(RuntimeError):
            empirical_mixing_time(g, 1e-3, max_steps=50)
