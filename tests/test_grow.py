"""Tests for GrowComponents (Section 6.1, Lemma 6.7)."""

import numpy as np
import pytest

from repro.core import contract_batch, grow_components
from repro.graph import (
    Graph,
    DisjointSetUnion,
    connected_components,
    is_component_partition,
    paper_random_graph_edges,
)
from repro.mpc import MPCEngine
from repro.utils.rng import spawn_rngs


def make_batches(n, half_degree, count, seed=0):
    rngs = spawn_rngs(seed, count)
    return [paper_random_graph_edges(n, half_degree, rng) for rng in rngs]


class TestContractBatch:
    def test_basic_contraction(self):
        labels = np.array([0, 0, 1, 1])
        batch = np.array([(0, 1), (1, 2), (2, 3), (0, 3)])
        edges, rep = contract_batch(labels, batch)
        assert edges.tolist() == [[0, 1]]
        # Representative is one of the crossing edges.
        assert rep.shape == (1,)
        assert rep[0] in (1, 3)

    def test_all_internal(self):
        labels = np.array([0, 0])
        batch = np.array([(0, 1), (1, 0)])
        edges, rep = contract_batch(labels, batch)
        assert edges.shape == (0, 2)
        assert rep.size == 0

    def test_dedup_keeps_one_per_pair(self):
        labels = np.array([0, 1, 0, 1])
        batch = np.array([(0, 1), (2, 3), (0, 3), (2, 1)])
        edges, rep = contract_batch(labels, batch)
        assert edges.shape == (1, 2)

    def test_empty_batch(self):
        edges, rep = contract_batch(np.array([0, 1]), np.empty((0, 2)))
        assert edges.shape == (0, 2)


class TestGrowComponents:
    def test_labels_form_component_partition(self):
        """Lemma 6.7(I): Ci is always a component-partition of the batch
        union."""
        n = 400
        batches = make_batches(n, 12, 2, seed=1)
        result = grow_components(n, batches, [4, 16], rng=0)
        union = Graph(n, np.concatenate(batches, axis=0))
        assert is_component_partition(union, result.labels)

    def test_components_grow_quadratically(self):
        """Mean component size advances ~Δ_i per phase (Lemma 6.7's
        |C_{i,j}| ∈ J(1±ε)Δ_i/ΔK, scaled constants)."""
        n = 3000
        growth = 4
        oversample = 10
        batches = make_batches(n, growth * oversample // 2, 2, seed=2)
        result = grow_components(n, batches, [growth, growth**2], rng=1)
        t1, t2 = result.telemetry
        assert t1.mean_component_size == pytest.approx(growth, rel=0.4)
        assert t2.mean_component_size == pytest.approx(growth**3, rel=0.5)

    def test_contraction_degree_squares(self):
        """The contraction graph's mean degree grows ~quadratically between
        phases (Claims 6.9/6.10: from Δ·s to Δ²·s)."""
        n = 5000
        growth, oversample = 4, 10
        b = growth * oversample // 2
        batches = make_batches(n, b, 2, seed=3)
        result = grow_components(n, batches, [growth, growth**2], rng=2)
        t1, t2 = result.telemetry
        assert t2.mean_contraction_degree == pytest.approx(
            growth * t1.mean_contraction_degree, rel=0.4
        )

    def test_tree_edges_acyclic_and_consistent(self):
        """Claim 6.12: the chosen edges form a forest refining the labels."""
        n = 500
        batches = make_batches(n, 10, 2, seed=4)
        result = grow_components(n, batches, [4, 16], rng=3)
        dsu = DisjointSetUnion(n)
        for u, v in result.tree_edges.tolist():
            assert dsu.union(int(u), int(v)), "cycle in tree edges"
        # Forest merges never cross label classes.
        for u, v in result.tree_edges.tolist():
            assert result.labels[u] == result.labels[v]

    def test_schedule_length_mismatch(self):
        with pytest.raises(ValueError):
            grow_components(10, make_batches(10, 2, 2), [4], rng=0)

    def test_engine_rounds_linear_in_phases(self):
        n = 300
        engine2 = MPCEngine(1000)
        grow_components(n, make_batches(n, 8, 2, seed=5), [4, 16], rng=0, engine=engine2)
        engine3 = MPCEngine(1000)
        grow_components(
            n, make_batches(n, 8, 3, seed=5), [4, 16, 256], rng=0, engine=engine3
        )
        assert engine2.rounds < engine3.rounds

    def test_respects_true_components(self):
        """Grow never merges vertices from different true components of the
        batch union."""
        n = 200
        # Two blocks with no cross edges: build batches within each half.
        rng_a, rng_b = spawn_rngs(6, 2)
        half = n // 2
        batch_a = paper_random_graph_edges(half, 8, rng_a)
        batch_b = paper_random_graph_edges(half, 8, rng_b) + half
        batch = np.concatenate([batch_a, batch_b], axis=0)
        result = grow_components(n, [batch], [4], rng=1)
        union = Graph(n, batch)
        truth = connected_components(union)
        for lab in np.unique(result.labels):
            members = np.flatnonzero(result.labels == lab)
            assert np.unique(truth[members]).size == 1

    def test_telemetry_fields(self):
        n = 300
        result = grow_components(n, make_batches(n, 8, 1, seed=7), [4], rng=0)
        [t] = result.telemetry
        assert t.phase == 1
        assert t.components_before == n
        assert t.components_after < n
        assert 0 < t.leader_prob <= 1
        assert t.contraction_vertices == n
