"""Tests for Lemma 6.1/6.2 — connectivity on unions of random graphs."""

import numpy as np

from repro.core import random_graph_components
from repro.graph import (
    Graph,
    components_agree,
    connected_components,
    paper_random_graph_edges,
    spanning_forest_is_valid,
)
from repro.mpc import MPCEngine
from repro.utils.rng import spawn_rngs


def single_random_graph_batches(n, half_degree, count, seed=0):
    rngs = spawn_rngs(seed, count)
    return [paper_random_graph_edges(n, half_degree, rng) for rng in rngs]


def disjoint_pair_batches(sizes, half_degree, count, seed=0):
    """Batches for a union of disjoint random-graph components."""
    rngs = spawn_rngs(seed, count)
    batches = []
    for rng in rngs:
        parts = []
        offset = 0
        for size in sizes:
            parts.append(paper_random_graph_edges(size, half_degree, rng) + offset)
            offset += size
        batches.append(np.concatenate(parts, axis=0))
    return batches


class TestLemma62SingleGraph:
    def test_finds_single_component(self):
        n = 1000
        batches = single_random_graph_batches(n, 16, 2, seed=0)
        result = random_graph_components(n, batches, [4, 16], rng=0)
        assert np.all(result.labels == 0)

    def test_spanning_tree_valid(self):
        n = 400
        batches = single_random_graph_batches(n, 12, 2, seed=1)
        result = random_graph_components(n, batches, [4, 16], rng=1)
        union = Graph(n, np.concatenate(batches, axis=0))
        assert spanning_forest_is_valid(union, result.tree_edges)

    def test_broadcast_rounds_constant(self):
        """Claim 6.13: the final contraction graph has O(1) diameter, so
        the broadcast stage is O(1) rounds."""
        n = 2000
        batches = single_random_graph_batches(n, 16, 2, seed=2)
        result = random_graph_components(n, batches, [4, 16], rng=2)
        assert result.broadcast_rounds <= 4

    def test_final_contraction_shrinks(self):
        n = 1000
        batches = single_random_graph_batches(n, 16, 2, seed=3)
        result = random_graph_components(n, batches, [4, 16], rng=3)
        assert result.final_contraction_vertices < n / 8


class TestLemma61DisjointUnion:
    def test_separates_components(self):
        batches = disjoint_pair_batches([300, 500], 16, 2, seed=4)
        n = 800
        result = random_graph_components(n, batches, [4, 16], rng=4)
        union = Graph(n, np.concatenate(batches, axis=0))
        assert components_agree(result.labels, connected_components(union))

    def test_many_small_components(self):
        sizes = [50] * 8
        batches = disjoint_pair_batches(sizes, 12, 2, seed=5)
        n = sum(sizes)
        result = random_graph_components(n, batches, [4, 16], rng=5)
        union = Graph(n, np.concatenate(batches, axis=0))
        assert components_agree(result.labels, connected_components(union))

    def test_spanning_forest_valid_across_components(self):
        batches = disjoint_pair_batches([100, 200], 12, 2, seed=6)
        n = 300
        result = random_graph_components(n, batches, [4, 16], rng=6)
        union = Graph(n, np.concatenate(batches, axis=0))
        assert spanning_forest_is_valid(union, result.tree_edges)


class TestRounds:
    def test_engine_round_count_log_log(self):
        """Rounds scale with the number of phases (log log n), not n."""
        results = {}
        for n in (500, 4000):
            engine = MPCEngine(max(16, int(n**0.5)))
            batches = single_random_graph_batches(n, 16, 2, seed=7)
            random_graph_components(n, batches, [4, 16], rng=7, engine=engine)
            results[n] = engine.rounds
        # An 8x larger input costs at most a few extra rounds.
        assert results[4000] <= results[500] + 6

    def test_exactness_even_with_bad_schedule(self):
        """With a hopeless growth schedule, the broadcast fallback still
        produces exact components (just more rounds — honesty check)."""
        n = 300
        batches = single_random_graph_batches(n, 3, 1, seed=8)
        result = random_graph_components(n, batches, [64], rng=8)
        union = Graph(n, batches[0])
        assert components_agree(result.labels, connected_components(union))
