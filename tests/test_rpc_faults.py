"""Fault injection for the RPC wire: worker death, stalls, duplicate ACKs.

Each scenario asserts three things: the failure surfaces as the *typed*
error family (never a hang, never a bare OSError), the pool either
fails closed or recovers via a lazy restart, and nothing leaks — no
``/dev/shm`` segments, no socket files, no live worker processes
(the ``test_arena.py`` leak-audit pattern applied to the wire layer).
"""

import contextlib
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.mpc import (
    RpcBackend,
    RpcError,
    RpcProtocolError,
    RpcTimeoutError,
    RpcWorkerError,
)

pytestmark = pytest.mark.slow


def shm_entries() -> set:
    """Names currently present in the system shared-memory namespace."""
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux hosts
        return set()


def wait_until(predicate, timeout=5.0, interval=0.02) -> bool:
    """Poll ``predicate`` until true or ``timeout`` elapses."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def assert_no_leaks(backend, pool, procs, baseline_shm):
    """Post-close audit: socket gone, workers reaped, shm unchanged."""
    assert pool.socket_path is not None
    assert wait_until(lambda: not os.path.exists(pool.socket_path))
    assert wait_until(lambda: not any(p.is_alive() for p in procs))
    assert shm_entries() - baseline_shm == set()


class TestWorkerDeath:
    def test_kill_worker_mid_op_raises_typed_and_recovers(self):
        baseline = shm_entries()
        backend = RpcBackend(
            shard_memory=64, workers=2, min_wire_items=0,
            call_timeout=30.0, heartbeat_interval=30.0,
        )
        table = np.arange(5000, dtype=np.int64)
        queries = np.arange(4000, dtype=np.int64) % 5000
        expected = table[queries]
        try:
            assert np.array_equal(backend.search(table, queries), expected)
            pool = backend._ensure_pool()
            procs = [h.proc for h in pool._handles]
            victim = procs[0]
            # Stall the worker so the next op is genuinely in flight,
            # then kill it mid-op: the parent's reader must fail the
            # pending call typed, long before the 30 s call timeout.
            os.kill(victim.pid, signal.SIGSTOP)
            failure = {}

            def in_flight():
                start = time.monotonic()
                try:
                    backend.search(table, queries + 1)
                except RpcError as exc:
                    failure["exc"] = exc
                failure["elapsed"] = time.monotonic() - start

            thread = threading.Thread(target=in_flight)
            thread.start()
            time.sleep(0.3)
            os.kill(victim.pid, signal.SIGKILL)
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            assert isinstance(failure["exc"], RpcWorkerError)
            assert failure["elapsed"] < 10.0
            assert pool.failed
            # The pool fails closed, then recovers on the next op via a
            # lazy restart — and the restarted fleet is correct.
            assert np.array_equal(backend.search(table, queries), expected)
            assert backend.workers_restarted == 1
        finally:
            backend.close()
        assert_no_leaks(backend, pool, procs, baseline)

    def test_dead_worker_before_op_raises_typed(self):
        backend = RpcBackend(shard_memory=64, workers=2, min_wire_items=0)
        try:
            backend.search(np.arange(100), np.arange(80))
            pool = backend._ensure_pool()
            os.kill(pool._handles[1].proc.pid, signal.SIGKILL)
            assert wait_until(lambda: pool.failed)
            # Dispatching straight to the poisoned pool is typed...
            with pytest.raises(RpcWorkerError):
                pool.barrier(
                    [
                        None,
                        {
                            "steps": [
                                {"op": "search",
                                 "inputs": ["table", "queries"],
                                 "outputs": ["found"],
                                 "params": {"lo": 0, "hi": 8}},
                            ],
                            "arrays": {"table": np.arange(10),
                                       "queries": np.arange(8)},
                            "returns": ["found"],
                        },
                    ]
                )
            # ...and so is dispatching to it again after it closed.
            with pytest.raises(RpcError, match="closed"):
                pool.barrier([None, None])
            # The backend itself recovers with a fresh pool.
            out = backend.search(np.arange(100), np.arange(80))
            assert np.array_equal(out, np.arange(80))
            assert backend.workers_restarted == 1
        finally:
            backend.close()


class TestHeartbeat:
    def test_stalled_connection_fails_past_heartbeat_deadline(self):
        baseline = shm_entries()
        backend = RpcBackend(
            shard_memory=64, workers=2, min_wire_items=0,
            heartbeat_interval=0.15, heartbeat_timeout=0.3, max_retries=0,
        )
        try:
            backend.search(np.arange(100), np.arange(80))
            pool = backend._ensure_pool()
            procs = [h.proc for h in pool._handles]
            victim = procs[0]
            os.kill(victim.pid, signal.SIGSTOP)
            try:
                # The idle-worker heartbeat must declare the stalled
                # worker dead within interval + timeout (plus slack).
                assert wait_until(lambda: pool.failed, timeout=5.0)
                reasons = pool.dead_workers
                assert any("heartbeat" in reason for reason in reasons)
            finally:
                os.kill(victim.pid, signal.SIGCONT)
            # Recovery: the next operation restarts the pool.
            out = backend.search(np.arange(100), np.arange(80))
            assert np.array_equal(out, np.arange(80))
            assert backend.workers_restarted == 1
        finally:
            backend.close()
        assert_no_leaks(backend, pool, procs, baseline)

    def test_healthy_pool_heartbeats_without_failing(self):
        backend = RpcBackend(
            shard_memory=64, workers=2, min_wire_items=0,
            heartbeat_interval=0.05, heartbeat_timeout=2.0,
        )
        try:
            backend.search(np.arange(100), np.arange(80))
            pool = backend._ensure_pool()
            assert wait_until(
                lambda: backend.transport_stats()["heartbeats"] >= 2,
                timeout=5.0,
            )
            assert not pool.failed
        finally:
            backend.close()


class TestCallTimeout:
    def test_stalled_call_times_out_typed_within_budget(self):
        backend = RpcBackend(
            shard_memory=64, workers=2, min_wire_items=0,
            call_timeout=0.2, max_retries=1, backoff=2.0,
            heartbeat_interval=60.0,
        )
        try:
            backend.search(np.arange(100), np.arange(80))
            pool = backend._ensure_pool()
            victims = [h.proc for h in pool._handles]
            for proc in victims:
                os.kill(proc.pid, signal.SIGSTOP)
            try:
                start = time.monotonic()
                with pytest.raises(RpcTimeoutError, match="did not ACK"):
                    backend.search(np.arange(100), np.arange(80))
                elapsed = time.monotonic() - start
                # One base wait + one backed-off retry, plus slack:
                # far under a hang, comfortably over the base timeout.
                assert elapsed < 5.0
                assert backend.transport_stats()["retries"] >= 1
            finally:
                for proc in victims:
                    # The fail-closed path may have reaped them already.
                    with contextlib.suppress(ProcessLookupError):
                        os.kill(proc.pid, signal.SIGCONT)
        finally:
            backend.close()


class TestDuplicateAck:
    def test_duplicate_ack_fails_closed_then_recovers(self):
        baseline = shm_entries()
        backend = RpcBackend(shard_memory=64, workers=2, min_wire_items=0)
        table = np.arange(64, dtype=np.int64)
        queries = np.arange(32, dtype=np.int64)
        try:
            backend.search(table, queries)
            pool = backend._ensure_pool()
            procs = [h.proc for h in pool._handles]
            # The dup_ack debug knob makes the worker repeat its ACK
            # verbatim: the first resolves the call, the duplicate has
            # no pending future and must fail the pool closed.
            replies = pool.barrier(
                [
                    {
                        "steps": [
                            {"op": "search",
                             "inputs": ["table", "queries"],
                             "outputs": ["found"],
                             "params": {"lo": 0, "hi": 32}},
                        ],
                        "arrays": {"table": table, "queries": queries},
                        "returns": ["found"],
                        "dup_ack": True,
                    },
                    None,
                ]
            )
            assert np.array_equal(replies[0]["found"], table[queries])
            assert wait_until(lambda: pool.failed, timeout=5.0)
            assert any(
                "duplicate or unmatched ACK" in reason
                for reason in pool.dead_workers
            )
            # Fails closed: the poisoned pool refuses further work...
            with pytest.raises(RpcProtocolError):
                pool.barrier(
                    [
                        {
                            "steps": [],
                            "arrays": {},
                            "returns": [],
                        },
                        None,
                    ]
                )
            # ...and the backend recovers by restarting it.
            out = backend.search(table, queries)
            assert np.array_equal(out, table[queries])
            assert backend.workers_restarted == 1
        finally:
            backend.close()
        assert_no_leaks(backend, pool, procs, baseline)


class TestLifecycleHygiene:
    def test_close_is_idempotent_and_leaves_no_sockets(self):
        baseline = shm_entries()
        backend = RpcBackend(shard_memory=64, workers=2, min_wire_items=0)
        backend.search(np.arange(100), np.arange(80))
        pool = backend._ensure_pool()
        procs = [h.proc for h in pool._handles]
        path = pool.socket_path
        assert os.path.exists(path)
        backend.close()
        backend.close()
        assert_no_leaks(backend, pool, procs, baseline)

    def test_closed_backend_restarts_on_demand(self):
        backend = RpcBackend(shard_memory=64, workers=2, min_wire_items=0)
        try:
            backend.search(np.arange(100), np.arange(80))
            backend.close()
            out = backend.search(np.arange(100), np.arange(80))
            assert np.array_equal(out, np.arange(80))
        finally:
            backend.close()

    def test_connect_timeout_is_typed(self, monkeypatch):
        import repro.mpc.rpc as rpc_module

        # Workers that never connect: the pool must fail construction
        # with the typed timeout, not hang in accept.
        monkeypatch.setattr(
            rpc_module, "_rpc_worker_main", lambda path, worker_id: None
        )
        backend = RpcBackend(
            shard_memory=64, workers=2, min_wire_items=0,
            connect_timeout=0.4, max_retries=1,
        )
        try:
            with pytest.raises(RpcTimeoutError, match="workers connected"):
                backend.search(np.arange(100), np.arange(80))
        finally:
            backend.close()
