"""Tests for the randomization step (Lemma 5.1)."""

import numpy as np
import pytest

from repro.core import randomize_components
from repro.graph import (
    component_count,
    components_agree,
    connected_components,
    disjoint_union,
    permutation_regular_graph,
)
from repro.mpc import MPCEngine


def two_expander_components(seed=0):
    a = permutation_regular_graph(30, 6, rng=seed)
    b = permutation_regular_graph(50, 6, rng=seed + 1)
    union, _ = disjoint_union([a, b])
    return union


class TestStructure:
    def test_vertex_set_preserved(self):
        g = two_expander_components()
        result = randomize_components(
            g, 16, batches=2, batch_half_degree=4, rng=0
        )
        assert result.graph.n == g.n

    def test_batch_shapes(self):
        g = two_expander_components()
        result = randomize_components(
            g, 16, batches=3, batch_half_degree=5, rng=0
        )
        assert result.batch_count == 3
        for batch in result.batches:
            assert batch.shape == (g.n * 5, 2)

    def test_union_graph_degree(self):
        g = two_expander_components()
        result = randomize_components(
            g, 16, batches=2, batch_half_degree=4, rng=0
        )
        # Out-degree exactly 8 per vertex; total degree concentrated ~16.
        assert result.graph.m == g.n * 8

    def test_walk_length_recorded(self):
        g = two_expander_components()
        result = randomize_components(g, 10, batches=1, batch_half_degree=2, rng=0)
        assert result.walk_length == 10


class TestComponentPreservation:
    def test_never_merges_components(self):
        """Walk edges cannot cross components (Lemma 5.1, part 1)."""
        g = two_expander_components()
        truth = connected_components(g)
        result = randomize_components(
            g, 32, batches=2, batch_half_degree=8, rng=1
        )
        for batch in result.batches:
            assert np.all(truth[batch[:, 0]] == truth[batch[:, 1]])

    def test_components_whp_connected(self):
        """With k = Θ(log n) targets per vertex each component stays
        connected (Prop. 2.4 via Lemma 5.1, part 2)."""
        g = two_expander_components(seed=3)
        result = randomize_components(
            g, 32, batches=2, batch_half_degree=8, rng=2
        )
        assert components_agree(
            connected_components(result.graph), connected_components(g)
        )

    def test_single_batch_component_count(self):
        g = permutation_regular_graph(64, 6, rng=5)
        result = randomize_components(g, 32, batches=1, batch_half_degree=8, rng=3)
        assert component_count(result.graph) == 1


class TestTargetUniformity:
    def test_targets_near_uniform_over_component(self):
        """After T >= T_mix, each vertex's targets are ~uniform over its
        component (the TV guarantee of Lemma 5.1)."""
        g = permutation_regular_graph(24, 6, rng=7)
        result = randomize_components(
            g, 64, batches=1, batch_half_degree=40, rng=4
        )
        targets = result.batches[0][:, 1]
        counts = np.bincount(targets, minlength=24)
        freq = counts / counts.sum()
        tv = 0.5 * np.abs(freq - 1 / 24).sum()
        assert tv < 0.08


class TestModes:
    def test_layered_mode_matches_interface(self):
        g = permutation_regular_graph(12, 4, rng=0)
        result = randomize_components(
            g, 4, batches=1, batch_half_degree=2, rng=5, walk_mode="layered"
        )
        assert result.batch_count == 1
        assert result.batches[0].shape == (24, 2)
        truth = connected_components(g)
        batch = result.batches[0]
        assert np.all(truth[batch[:, 0]] == truth[batch[:, 1]])

    def test_unknown_mode_rejected(self):
        g = permutation_regular_graph(12, 4, rng=0)
        with pytest.raises(ValueError, match="walk_mode"):
            randomize_components(
                g, 4, batches=1, batch_half_degree=2, walk_mode="psychic"
            )

    def test_engine_charged(self):
        g = permutation_regular_graph(12, 4, rng=0)
        engine = MPCEngine(1000)
        randomize_components(
            g, 8, batches=2, batch_half_degree=3, rng=0, engine=engine
        )
        assert engine.rounds > 0
