"""Tests for SublinearConn (Theorem 2)."""

import numpy as np
import pytest

from repro.core import degree_target, sublinear_connectivity, walk_budget
from repro.graph import (
    Graph,
    community_graph,
    components_agree,
    connected_components,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    paper_random_graph,
    path_graph,
    star_graph,
)
from repro.mpc import MPCEngine


class TestHelpers:
    def test_degree_target_inverse_in_s(self):
        assert degree_target(1000, 100) == 10
        assert degree_target(1000, 500) == 2
        assert degree_target(1000, 10_000) == 2  # floor

    def test_walk_budget_cubic(self):
        small = walk_budget(2, 1000)
        big = walk_budget(4, 1000)
        assert big == pytest.approx(8 * small, rel=0.1)

    def test_walk_budget_capped(self):
        assert walk_budget(100, 1000, cap=500) == 500


class TestCorrectnessArbitraryGraphs:
    """Theorem 2 makes no assumptions on the input graph."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda: path_graph(100),
            lambda: cycle_graph(100),
            lambda: star_graph(80),
            lambda: grid_graph(10, 10),
            lambda: hypercube_graph(6),
        ],
        ids=["path", "cycle", "star", "grid", "hypercube"],
    )
    def test_structured_graphs(self, make):
        g = make()
        result = sublinear_connectivity(g, machine_memory=32, rng=0)
        assert components_agree(result.labels, connected_components(g))

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, seed):
        g = paper_random_graph(150, 4, rng=seed)
        result = sublinear_connectivity(g, machine_memory=48, rng=seed)
        assert components_agree(result.labels, connected_components(g))

    def test_multi_component(self):
        g, _ = community_graph([40, 60, 20], 6, rng=1)
        result = sublinear_connectivity(g, machine_memory=40, rng=1)
        assert components_agree(result.labels, connected_components(g))

    def test_isolated_vertices(self):
        g = Graph(10, [(0, 1), (2, 3)])
        result = sublinear_connectivity(g, machine_memory=8, rng=2)
        assert components_agree(result.labels, connected_components(g))

    def test_edgeless(self):
        g = Graph(6, [])
        result = sublinear_connectivity(g, machine_memory=8, rng=0)
        assert np.array_equal(result.labels, np.arange(6))
        assert result.rounds == 0


class TestMemoryScaling:
    def test_contraction_shrinks_with_memory(self):
        """Smaller s -> larger d -> fewer contracted vertices (the
        |V(H)| = O(s·polylog) guarantee)."""
        g = paper_random_graph(400, 6, rng=3)
        big_s = sublinear_connectivity(g, machine_memory=200, rng=3)
        small_s = sublinear_connectivity(g, machine_memory=40, rng=3)
        assert small_s.degree_target > big_s.degree_target
        assert small_s.contracted_vertices <= big_s.contracted_vertices

    def test_rounds_fall_with_memory(self):
        """Theorem 2: rounds = O(log log n + log(n/s)) — more memory,
        fewer rounds (through the shorter walks)."""
        g = paper_random_graph(600, 6, rng=4)
        tight = sublinear_connectivity(g, machine_memory=30, rng=4)
        roomy = sublinear_connectivity(g, machine_memory=300, rng=4)
        assert roomy.walk_length < tight.walk_length
        assert roomy.rounds <= tight.rounds

    def test_engine_phases(self):
        g = paper_random_graph(100, 6, rng=5)
        result = sublinear_connectivity(g, machine_memory=25, rng=5)
        names = {p.name for p in result.engine.phase_summaries()}
        assert {"Walk", "Contract", "Sketch"} <= names

    def test_external_engine(self):
        g = cycle_graph(50)
        engine = MPCEngine(64)
        result = sublinear_connectivity(g, machine_memory=64, rng=6, engine=engine)
        assert result.engine is engine
        assert engine.rounds == result.rounds

    def test_sketch_words_reported(self):
        g = paper_random_graph(200, 6, rng=7)
        result = sublinear_connectivity(g, machine_memory=50, rng=7)
        assert result.sketch_words_per_vertex > 0
