"""Tests for the broadcast spanning-tree stage (Claim 6.14)."""

import numpy as np
import pytest

from repro.core import broadcast_components
from repro.graph import (
    Graph,
    DisjointSetUnion,
    components_agree,
    connected_components,
    cycle_graph,
    diameter,
    paper_random_graph,
    path_graph,
    permutation_regular_graph,
)
from repro.mpc import MPCEngine


class TestCorrectness:
    def test_single_component(self):
        g = cycle_graph(10)
        result = broadcast_components(10, g.edges)
        assert np.all(result.labels == 0)

    def test_multiple_components(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4)])
        result = broadcast_components(6, g.edges)
        assert components_agree(result.labels, connected_components(g))

    def test_no_edges(self):
        result = broadcast_components(4, np.empty((0, 2)))
        assert np.array_equal(result.labels, np.arange(4))
        assert result.rounds == 0

    def test_self_loops_ignored(self):
        result = broadcast_components(2, np.array([(0, 0), (0, 1)]))
        assert result.labels[0] == result.labels[1]

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs_match_reference(self, seed):
        g = paper_random_graph(100, 6, rng=seed)
        result = broadcast_components(100, g.edges)
        assert components_agree(result.labels, connected_components(g))


class TestSpanningTree:
    def test_tree_edge_count(self):
        g = permutation_regular_graph(50, 6, rng=0)
        result = broadcast_components(50, g.edges)
        # Connected: n-1 tree edges.
        assert result.tree_edges.size == 49

    def test_tree_is_acyclic_and_spanning(self):
        g = paper_random_graph(120, 8, rng=1)
        result = broadcast_components(120, g.edges)
        dsu = DisjointSetUnion(120)
        for eid in result.tree_edges.tolist():
            u, v = g.edges[eid]
            assert dsu.union(int(u), int(v)), "cycle"
        assert components_agree(dsu.labels(), connected_components(g))

    def test_forest_across_components(self):
        g = Graph(7, [(0, 1), (1, 2), (3, 4), (4, 5), (3, 5)])
        result = broadcast_components(7, g.edges)
        # 3 components (one isolated vertex): 7 - 3 = 4 tree edges.
        assert result.tree_edges.size == 4


class TestRounds:
    def test_rounds_bounded_by_diameter(self):
        """The wave from the component minimum takes at most the
        eccentricity of the minimum vertex, ≤ diameter."""
        g = cycle_graph(20)
        result = broadcast_components(20, g.edges)
        assert result.rounds <= diameter(g) + 1

    def test_path_rounds_linear(self):
        g = path_graph(30)
        result = broadcast_components(30, g.edges)
        assert result.rounds == 29  # min label 0 sits at one end

    def test_expander_rounds_logarithmic(self):
        g = permutation_regular_graph(500, 8, rng=2)
        result = broadcast_components(500, g.edges)
        assert result.rounds <= 8

    def test_engine_charged_per_level(self):
        g = path_graph(10)
        engine = MPCEngine(1000)
        result = broadcast_components(10, g.edges, engine=engine)
        assert engine.rounds == result.rounds

    def test_max_rounds_guard(self):
        g = path_graph(50)
        with pytest.raises(RuntimeError):
            broadcast_components(50, g.edges, max_rounds=3)
