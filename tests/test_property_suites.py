"""Cross-module hypothesis property suites.

Invariants that hold for *all* inputs, exercised with generated data:
contraction algebra, label canonicalisation, leader-election structure,
broadcast-vs-reference equivalence, sketch linearity, and the interval
calculus versus Monte Carlo evaluation of ± expressions.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import Interval
from repro.core import broadcast_components, contract_batch, leader_election
from repro.graph import (
    Graph,
    canonical_labels,
    components_agree,
    connected_components,
)
from repro.sketch import L0Sampler, OneSparseRecovery

# Generated-data suites are the long tail of the test run; CI's fast tier
# skips them (-m "not slow") and a scheduled job runs them nightly.
pytestmark = pytest.mark.slow

common_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def edges_strategy(n: int, max_edges: int = 50):
    return st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=max_edges,
    )


@common_settings
@given(n=st.integers(1, 20), data=st.data())
def test_canonical_labels_idempotent_and_order_preserving(n, data):
    labels = np.array(data.draw(st.lists(st.integers(0, 5), min_size=n, max_size=n)))
    canon = canonical_labels(labels)
    # Idempotent.
    assert np.array_equal(canonical_labels(canon), canon)
    # Same partition.
    for i in range(n):
        for j in range(n):
            assert (labels[i] == labels[j]) == (canon[i] == canon[j])
    # First-seen order: labels appear as 0,1,2,... in first-occurrence order.
    seen = []
    for value in canon:
        if value not in seen:
            seen.append(value)
    assert seen == list(range(len(seen)))


@common_settings
@given(n=st.integers(2, 16), data=st.data())
def test_contract_batch_invariants(n, data):
    edges = np.array(
        data.draw(edges_strategy(n)) or [(0, 0)], dtype=np.int64
    ).reshape(-1, 2)
    labels = canonical_labels(
        np.array(data.draw(st.lists(st.integers(0, 3), min_size=n, max_size=n)))
    )
    contracted, representative = contract_batch(labels, edges)
    # No self-loops, no duplicates, canonical orientation.
    if contracted.shape[0]:
        assert np.all(contracted[:, 0] < contracted[:, 1])
        keys = contracted[:, 0] * (labels.max() + 1) + contracted[:, 1]
        assert np.unique(keys).size == keys.size
    # Representatives realise their contracted edge.
    for (a, b), rep in zip(contracted.tolist(), representative.tolist()):
        u, v = edges[rep]
        assert {labels[u], labels[v]} == {a, b}
    # Completeness: every crossing input edge appears contracted.
    for u, v in edges.tolist():
        if labels[u] != labels[v]:
            a, b = min(labels[u], labels[v]), max(labels[u], labels[v])
            assert any((a, b) == tuple(e) for e in contracted.tolist())


@common_settings
@given(n=st.integers(1, 16), p=st.floats(0.0, 1.0), data=st.data())
def test_leader_election_structure(n, p, data):
    edges = np.array(
        data.draw(edges_strategy(n)) or [], dtype=np.int64
    ).reshape(-1, 2)
    seed = data.draw(st.integers(0, 100))
    result = leader_election(n, edges, p, rng=seed)
    groups = result.groups
    for v in range(n):
        if result.is_leader[v]:
            assert result.leader_of[v] == v
        leader = result.leader_of[v]
        if leader >= 0 and leader != v:
            # Matched non-leader: leader is a leader, edge certificate valid.
            assert result.is_leader[leader]
            eid = result.chosen_edge[v]
            assert eid >= 0
            assert set(edges[eid].tolist()) == {v, leader}
        # Stars have depth one.
        assert groups[groups[v]] == groups[v]


@common_settings
@given(n=st.integers(1, 20), data=st.data())
def test_broadcast_matches_reference(n, data):
    edges = np.array(
        data.draw(edges_strategy(n)) or [], dtype=np.int64
    ).reshape(-1, 2)
    g = Graph(n, edges)
    result = broadcast_components(n, edges)
    assert components_agree(result.labels, connected_components(g))


@common_settings
@given(data=st.data())
def test_one_sparse_linearity(data):
    """sketch(f) + sketch(g) decodes f + g whenever the sum is 1-sparse."""
    universe = 64
    seed = data.draw(st.integers(0, 50))
    base = OneSparseRecovery.fresh(universe, rng=seed)
    other = OneSparseRecovery(
        universe=base.universe, fingerprint_base=base.fingerprint_base
    )
    index = data.draw(st.integers(0, universe - 1))
    w1 = data.draw(st.integers(-20, 20))
    w2 = data.draw(st.integers(-20, 20))
    base.update(index, w1)
    other.update(index, w2)
    merged = base.merge(other)
    if w1 + w2 == 0:
        assert merged.is_zero
    else:
        assert merged.decode() == (index, w1 + w2)


@common_settings
@given(data=st.data())
def test_l0_sampler_returns_true_support(data):
    universe = 256
    seed = data.draw(st.integers(0, 30))
    support_size = data.draw(st.integers(1, 40))
    rng = np.random.default_rng(seed)
    indices = rng.choice(universe, size=support_size, replace=False)
    weights = rng.integers(1, 5, size=support_size)
    sampler = L0Sampler.fresh(universe, rng=seed)
    sampler.update_many(indices, weights)
    result = sampler.sample()
    if result is not None:
        index, weight = result
        position = np.flatnonzero(indices == index)
        assert position.size == 1
        assert weight == weights[position[0]]


@common_settings
@given(
    x_center=st.floats(-10, 10),
    x_delta=st.floats(0, 5),
    y_center=st.floats(-10, 10),
    y_delta=st.floats(0, 5),
    tx=st.floats(0, 1),
    ty=st.floats(0, 1),
)
def test_interval_calculus_contains_monte_carlo(
    x_center, x_delta, y_center, y_delta, tx, ty
):
    """Every pointwise evaluation of an expression over J·K operands lands
    inside the interval result (soundness of the calculus)."""
    x_iv = Interval.pm(x_center, x_delta)
    y_iv = Interval.pm(y_center, y_delta)
    x = x_iv.low + tx * x_iv.width
    y = y_iv.low + ty * y_iv.width
    combos = [
        (x + y, x_iv + y_iv),
        (x - y, x_iv - y_iv),
        (x * y, x_iv * y_iv),
        (x * x, x_iv * x_iv),
    ]
    for value, interval in combos:
        assert interval.contains(value, slack=1e-9) or abs(value) < 1e-12
