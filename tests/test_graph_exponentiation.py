"""Tests for the diameter-parametrized baseline (Section 1.3 / [6])."""

import numpy as np
import pytest

from repro.baselines import exponentiation_components
from repro.graph import (
    Graph,
    community_graph,
    components_agree,
    connected_components,
    cycle_graph,
    dumbbell_graph,
    paper_random_graph,
    path_graph,
    permutation_regular_graph,
    star_graph,
)
from repro.mpc import MPCEngine


class TestCorrectness:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: path_graph(50),
            lambda: cycle_graph(41),
            lambda: star_graph(30),
            lambda: Graph(6, [(0, 1), (2, 3), (4, 5)]),
            lambda: Graph(4, []),
            lambda: paper_random_graph(80, 4, rng=0),
            lambda: community_graph([30, 20], 6, rng=1)[0],
        ],
        ids=["path", "cycle", "star", "matching", "empty", "random", "community"],
    )
    def test_matches_reference(self, make):
        g = make()
        result = exponentiation_components(g)
        assert components_agree(result.labels, connected_components(g))

    @pytest.mark.parametrize("seed", range(4))
    def test_fuzz_random(self, seed):
        g = paper_random_graph(60, 3, rng=seed)
        result = exponentiation_components(g)
        assert components_agree(result.labels, connected_components(g))

    def test_multigraph_input(self):
        g = Graph(4, [(0, 1), (0, 1), (1, 1), (2, 3)])
        result = exponentiation_components(g)
        assert components_agree(result.labels, connected_components(g))


class TestPhaseScaling:
    def test_phases_track_log_diameter(self):
        """The defining property: path (D = n) needs ~log n phases,
        dumbbell (D = O(log n)) needs O(log log n)-ish."""
        path_result = exponentiation_components(path_graph(512))
        bell_result = exponentiation_components(dumbbell_graph(256, 8, rng=0))
        assert path_result.phases <= np.log2(512) + 2
        assert bell_result.phases <= path_result.phases - 2

    def test_phases_grow_with_path_length(self):
        short = exponentiation_components(path_graph(32)).phases
        long = exponentiation_components(path_graph(512)).phases
        assert long > short
        # ...but only logarithmically: 16x the diameter, ≤ +5 phases.
        assert long <= short + 5

    def test_expander_constant_phases(self):
        g = permutation_regular_graph(1024, 8, rng=2)
        result = exponentiation_components(g)
        assert result.phases <= 4

    def test_degree_cap_respected(self):
        g = permutation_regular_graph(128, 6, rng=3)
        result = exponentiation_components(g, degree_cap=4)
        assert components_agree(result.labels, connected_components(g))

    def test_engine_charged(self):
        g = path_graph(64)
        engine = MPCEngine(256)
        result = exponentiation_components(g, engine=engine)
        assert engine.rounds == result.rounds > 0

    def test_max_phases_guard(self):
        with pytest.raises(RuntimeError):
            exponentiation_components(path_graph(200), max_phases=2)
