"""Tests for the Appendix B balls-and-bins experiment (Proposition B.1)."""

import numpy as np
import pytest

from repro.analysis import (
    nonempty_bins_interval,
    prop_b1_failure_bound,
    throw_balls,
)


class TestThrowBalls:
    def test_counts_are_sane(self):
        result = throw_balls(100, 10_000, rng=0)
        assert 1 <= result.nonempty <= 100

    def test_single_bin(self):
        assert throw_balls(50, 1, rng=0).nonempty == 1

    def test_more_bins_than_balls_mostly_distinct(self):
        result = throw_balls(100, 1_000_000, rng=0)
        assert result.nonempty >= 95

    def test_perturbed_probabilities(self):
        result = throw_balls(100, 10_000, eps=0.05, rng=0)
        assert 1 <= result.nonempty <= 100

    def test_reproducible(self):
        a = throw_balls(500, 10_000, rng=42)
        b = throw_balls(500, 10_000, rng=42)
        assert a.nonempty == b.nonempty

    def test_rejects_zero_balls(self):
        with pytest.raises(ValueError):
            throw_balls(0, 10)

    def test_ratio(self):
        r = throw_balls(10, 10_000_000, rng=1)
        assert r.ratio == r.nonempty / 10


class TestPropB1:
    def test_interval_matches_paper(self):
        iv = nonempty_bins_interval(1000, 0.05)
        assert iv.low == pytest.approx(900)
        assert iv.high == pytest.approx(1100)

    def test_failure_bound_formula(self):
        assert prop_b1_failure_bound(1000, 0.1) == pytest.approx(
            np.exp(-0.01 * 1000 / 2)
        )

    def test_empirical_deviation_within_bound(self):
        """Run the experiment many times in the N ≤ εB regime; the deviation
        frequency must not exceed the Prop. B.1 bound (plus statistical
        tolerance)."""
        rng = np.random.default_rng(3)
        eps = 0.1
        balls = 2_000
        bins = int(balls / eps)  # N = εB boundary case
        iv = nonempty_bins_interval(balls, eps)
        trials = 200
        failures = 0
        for _ in range(trials):
            result = throw_balls(balls, bins, rng=rng)
            if not iv.contains(result.nonempty):
                failures += 1
        bound = prop_b1_failure_bound(balls, eps)
        assert failures / trials <= bound + 0.05

    def test_near_uniform_perturbation_still_concentrates(self):
        rng = np.random.default_rng(5)
        eps = 0.1
        balls, bins = 1_000, 50_000
        iv = nonempty_bins_interval(balls, eps)
        for _ in range(20):
            result = throw_balls(balls, bins, eps=eps, rng=rng)
            assert iv.contains(result.nonempty)
