"""Tests for the DSU reference structure."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DisjointSetUnion


class TestBasics:
    def test_initial_state(self):
        dsu = DisjointSetUnion(5)
        assert dsu.set_count == 5
        assert all(dsu.find(i) == i for i in range(5))

    def test_union_reduces_count(self):
        dsu = DisjointSetUnion(4)
        assert dsu.union(0, 1)
        assert dsu.set_count == 3
        assert not dsu.union(0, 1)
        assert dsu.set_count == 3

    def test_connected(self):
        dsu = DisjointSetUnion(4)
        dsu.union(0, 1)
        dsu.union(2, 3)
        assert dsu.connected(0, 1)
        assert not dsu.connected(1, 2)
        dsu.union(1, 2)
        assert dsu.connected(0, 3)

    def test_size_of(self):
        dsu = DisjointSetUnion(5)
        dsu.union(0, 1)
        dsu.union(1, 2)
        assert dsu.size_of(0) == 3
        assert dsu.size_of(4) == 1

    def test_union_edges(self):
        dsu = DisjointSetUnion(4)
        merges = dsu.union_edges(np.array([[0, 1], [1, 2], [0, 2]]))
        assert merges == 2
        assert dsu.set_count == 2

    def test_labels_canonical(self):
        dsu = DisjointSetUnion(4)
        dsu.union(2, 3)
        labels = dsu.labels()
        assert labels[2] == labels[3]
        assert labels[0] != labels[1]
        assert set(labels.tolist()) == {0, 1, 2}

    def test_zero_elements(self):
        dsu = DisjointSetUnion(0)
        assert dsu.set_count == 0
        assert dsu.labels().size == 0


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(1, 40),
    data=st.data(),
)
def test_dsu_matches_naive_partition(n, data):
    """DSU agrees with a naive partition-merging implementation."""
    ops = data.draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=80,
        )
    )
    dsu = DisjointSetUnion(n)
    naive = [{i} for i in range(n)]
    lookup = list(range(n))

    for a, b in ops:
        dsu.union(a, b)
        ra, rb = lookup[a], lookup[b]
        if ra != rb:
            naive[ra] |= naive[rb]
            for x in naive[rb]:
                lookup[x] = ra
            naive[rb] = set()

    for a in range(n):
        for b in range(n):
            assert dsu.connected(a, b) == (lookup[a] == lookup[b])

    assert dsu.set_count == sum(1 for s in naive if s)
