"""Tests for graph generators, including the paper's G(n,d) and G_{n,d}."""

import numpy as np
import pytest

from repro.graph import (
    community_graph,
    complete_graph,
    component_count,
    connected_components,
    cycle_graph,
    dumbbell_graph,
    empty_graph,
    erdos_renyi,
    expander_path,
    grid_graph,
    hypercube_graph,
    paper_random_graph,
    paper_random_graph_edges,
    path_graph,
    permutation_regular_graph,
    planted_expander_components,
    ring_of_expanders,
    star_graph,
)


class TestPaperRandomGraph:
    def test_edge_count(self):
        g = paper_random_graph(100, 10, rng=0)
        assert g.m == 100 * 5

    def test_degrees_concentrate(self):
        # Proposition 2.3 regime: d >= 4 log n / eps^2.
        n, d = 500, 200
        g = paper_random_graph(n, d, rng=1)
        eps = np.sqrt(4 * np.log(n) / d)
        assert g.is_almost_regular(d, 1.5 * eps)

    def test_connectivity_at_log_threshold(self):
        # Proposition 2.4: d >= c log n connects w.h.p.
        n = 256
        d = int(8 * np.log(n))
        g = paper_random_graph(n, d, rng=2)
        assert component_count(g) == 1

    def test_odd_d_uses_floor(self):
        g = paper_random_graph(50, 5, rng=0)
        assert g.m == 50 * 2

    def test_d_one_gives_empty(self):
        assert paper_random_graph(10, 1, rng=0).m == 0

    def test_edges_helper_matches_model(self):
        edges = paper_random_graph_edges(50, 3, rng=0)
        assert edges.shape == (150, 2)
        assert np.array_equal(edges[:, 0], np.repeat(np.arange(50), 3))


class TestPermutationRegularGraph:
    def test_exact_regularity(self):
        for n in (1, 2, 5, 40):
            g = permutation_regular_graph(n, 6, rng=0)
            assert g.is_regular(6), f"n={n}"

    def test_rejects_odd_degree(self):
        with pytest.raises(ValueError):
            permutation_regular_graph(10, 3)

    def test_edge_count(self):
        g = permutation_regular_graph(30, 8, rng=0)
        assert g.m == 30 * 4

    def test_connected_at_moderate_degree(self):
        g = permutation_regular_graph(200, 10, rng=3)
        assert component_count(g) == 1


class TestClassicalFamilies:
    def test_path(self):
        g = path_graph(5)
        assert g.m == 4 and g.degree(0) == 1 and g.degree(2) == 2

    def test_cycle(self):
        assert cycle_graph(6).is_regular(2)

    def test_cycle_of_one_is_self_loop(self):
        g = cycle_graph(1)
        assert g.self_loop_count == 1

    def test_complete(self):
        g = complete_graph(5)
        assert g.m == 10 and g.is_regular(4)

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 5
        assert star_graph(1).m == 0

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12 and g.m == 3 * 3 + 2 * 4

    def test_hypercube(self):
        g = hypercube_graph(4)
        assert g.n == 16 and g.is_regular(4)
        assert component_count(g) == 1

    def test_empty(self):
        assert empty_graph(3).m == 0

    def test_erdos_renyi_p_zero_and_one(self):
        assert erdos_renyi(10, 0.0, rng=0).m == 0
        assert erdos_renyi(6, 1.0, rng=0).m == 15

    def test_erdos_renyi_no_duplicates(self):
        g = erdos_renyi(30, 0.3, rng=1)
        assert g.parallel_edge_count == 0
        assert g.self_loop_count == 0


class TestWorkloads:
    def test_planted_components_structure(self):
        g, labels = planted_expander_components([8, 12], 4, rng=0)
        assert g.n == 20
        assert labels.tolist() == [0] * 8 + [1] * 12
        found = connected_components(g)
        # Each planted part is internally connected at d=4 w.h.p. for
        # these sizes; cross-part edges never exist.
        for u, v in g.edges.tolist():
            assert labels[u] == labels[v]
        assert found.max() >= 1

    def test_dumbbell_connected_single_bridge(self):
        g = dumbbell_graph(50, 6, bridges=1, rng=0)
        assert g.n == 100
        assert component_count(g) == 1

    def test_dumbbell_bridge_count(self):
        g = dumbbell_graph(30, 6, bridges=3, rng=0)
        crossing = [
            (u, v) for u, v in g.edges.tolist() if (u < 30) != (v < 30)
        ]
        assert len(crossing) == 3

    def test_ring_of_expanders(self):
        g = ring_of_expanders(4, 25, 6, rng=0)
        assert g.n == 100
        assert component_count(g) == 1

    def test_ring_of_one(self):
        g = ring_of_expanders(1, 30, 6, rng=0)
        assert component_count(g) == 1

    def test_expander_path(self):
        g = expander_path(3, 20, 6, rng=0)
        assert g.n == 60
        assert component_count(g) == 1

    def test_community_graph(self):
        g, labels = community_graph([20, 30], 8, rng=0)
        assert g.n == 50
        for u, v in g.edges.tolist():
            assert labels[u] == labels[v]

    def test_community_graph_skew_tail(self):
        g, labels = community_graph([40], 8, rng=0, skew_tail=True)
        assert g.n > 40
        assert labels.max() >= 4


class TestDegenerateSizes:
    """Boundary sizes every family must survive: the CSR differential
    harness (and the sketch layer before it) feeds generators far below
    benchmark scale, where isolated vertices, self-loops, and parallel
    edges dominate the edge list."""

    def test_dumbbell_workload_of_one_builds(self):
        # Regression: Workload("dumbbell", 1) used to crash with
        # "half must be >= 1" — the only family without a size floor.
        from repro.bench.workloads import Workload

        for n in (1, 2, 3):
            g = Workload("dumbbell", n).build(0)
            assert component_count(g) == 1

    def test_every_family_builds_at_tiny_sizes(self):
        from repro.bench.workloads import Workload, family_names

        for family in family_names():
            for n in (1, 2, 3):
                g = Workload(family, n).build(3)
                assert g.n >= 1
                assert int(g.degrees.sum()) == 2 * g.m, (family, n)

    def test_single_vertex_regular_graphs_are_self_loops(self):
        g = permutation_regular_graph(1, 6, rng=0)
        assert g.n == 1 and g.m == 3
        assert g.self_loop_count == 3
        assert component_count(g) == 1

    def test_planted_part_of_one_stays_one_component(self):
        g, labels = planted_expander_components([1], 4, rng=0)
        assert g.n == 1
        assert labels.tolist() == [0]
        assert component_count(g) == 1

    def test_dumbbell_half_of_one_connects_by_parallel_bridges(self):
        g = dumbbell_graph(1, 4, bridges=3, rng=0)
        assert g.n == 2
        assert g.parallel_edge_count >= 2  # the extra bridges
        assert component_count(g) == 1

    def test_isolated_vertices_survive_components(self):
        g = empty_graph(5)
        labels = connected_components(g)
        assert labels.tolist() == [0, 1, 2, 3, 4]


class TestReproducibility:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: paper_random_graph(40, 8, rng=seed),
            lambda seed: permutation_regular_graph(40, 6, rng=seed),
            lambda seed: dumbbell_graph(20, 6, rng=seed),
        ],
    )
    def test_same_seed_same_graph(self, factory):
        assert factory(5) == factory(5)
