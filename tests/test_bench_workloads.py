"""Workload abstraction: families, determinism, serialization."""

import numpy as np
import pytest

from repro.bench import Workload, family_names
from repro.graph import connected_components


def test_known_families_present():
    names = family_names()
    for expected in ("path", "grid", "paper_random", "permutation_regular",
                     "dumbbell", "expander_path"):
        assert expected in names


def test_unknown_family_rejected():
    with pytest.raises(KeyError, match="unknown graph family"):
        Workload("zz_not_a_family", 16)


def test_bad_size_rejected():
    with pytest.raises(ValueError, match="positive"):
        Workload("path", 0)


def test_build_is_deterministic_per_seed():
    w = Workload("permutation_regular", 64, {"degree": 4})
    a, b = w.build(7), w.build(7)
    assert np.array_equal(a.edges, b.edges)
    c = w.build(8)
    assert not np.array_equal(a.edges, c.edges)


def test_build_produces_requested_size():
    assert Workload("path", 33).build(0).n == 33
    assert Workload("dumbbell", 64, {"degree": 6}).build(0).n == 64
    assert Workload("paper_random", 50, {"degree": 8}).build(1).n == 50


def test_dumbbell_is_connected_with_bridges():
    graph = Workload("dumbbell", 64, {"degree": 6, "bridges": 2}).build(3)
    assert int(connected_components(graph).max()) == 0


def test_label_is_stable_and_sorted():
    w = Workload("dumbbell", 64, {"degree": 6, "bridges": 2})
    assert w.label == "dumbbell(n=64,bridges=2,degree=6)"


def test_json_round_trip():
    w = Workload("expander_path", 96, {"count": 4, "degree": 8})
    again = Workload.from_json(w.to_json())
    assert again == w
    assert again.label == w.label
