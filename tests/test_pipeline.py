"""End-to-end tests for the Theorem 4 pipeline and Corollary 7.1."""

import numpy as np
import pytest

from repro.core import (
    PipelineConfig,
    mpc_connected_components,
    mpc_connected_components_adaptive,
)
from repro.graph import (
    Graph,
    community_graph,
    components_agree,
    connected_components,
    cycle_graph,
    dumbbell_graph,
    min_component_spectral_gap,
    paper_random_graph,
    path_graph,
    planted_expander_components,
    star_graph,
)
from repro.mpc import MPCEngine

FAST = PipelineConfig(max_walk_length=64, oversample=6, growth=4)


class TestCorrectness:
    def test_single_expander(self):
        g = paper_random_graph(200, 10, rng=0)
        result = mpc_connected_components(g, 0.3, config=FAST, rng=0)
        assert components_agree(result.labels, connected_components(g))

    def test_planted_components(self):
        g, _ = planted_expander_components([60, 100, 140], 8, rng=1)
        result = mpc_connected_components(g, 0.2, config=FAST, rng=1)
        assert components_agree(result.labels, connected_components(g))

    def test_community_graph_with_tail(self):
        g, _ = community_graph([80, 50], 10, rng=2, skew_tail=True)
        result = mpc_connected_components(g, 0.1, config=FAST, rng=2)
        assert components_agree(result.labels, connected_components(g))

    def test_isolated_vertices(self):
        g = Graph(10, [(0, 1), (1, 2), (2, 0)])
        result = mpc_connected_components(g, 0.5, config=FAST, rng=3)
        assert components_agree(result.labels, connected_components(g))

    def test_edgeless_graph(self):
        g = Graph(5, [])
        result = mpc_connected_components(g, 0.5, config=FAST, rng=0)
        assert np.array_equal(result.labels, np.arange(5))
        assert result.rounds == 0

    def test_star_graph(self):
        g = star_graph(50)
        result = mpc_connected_components(g, 0.5, config=FAST, rng=4)
        assert result.component_count == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_fuzz_mixed_components(self, seed):
        """Exactness on a mix of sizes and shapes, many seeds — the
        verification stage guarantees this regardless of random outcomes."""
        rng = np.random.default_rng(seed)
        sizes = rng.integers(5, 60, size=4).tolist()
        g, _ = community_graph(sizes, 8, rng=rng)
        result = mpc_connected_components(g, 0.05, config=FAST, rng=rng)
        assert components_agree(result.labels, connected_components(g))

    def test_weakly_connected_still_exact(self):
        """Even a cycle (gap ~ 1/n²) is answered exactly — the fallback
        broadcast pays the rounds honestly."""
        g = cycle_graph(60)
        result = mpc_connected_components(g, 0.005, config=FAST, rng=5)
        assert result.component_count == 1

    def test_layered_walk_mode(self):
        g = paper_random_graph(30, 8, rng=6)
        config = FAST.with_overrides(max_walk_length=8, oversample=4)
        result = mpc_connected_components(
            g, 0.5, config=config, rng=6, walk_mode="layered"
        )
        assert components_agree(result.labels, connected_components(g))


class TestRoundAccounting:
    def test_rounds_recorded(self):
        g = paper_random_graph(100, 10, rng=0)
        result = mpc_connected_components(g, 0.3, config=FAST, rng=0)
        assert result.rounds == result.engine.rounds > 0

    def test_phases_present(self):
        g = paper_random_graph(100, 10, rng=0)
        result = mpc_connected_components(g, 0.3, config=FAST, rng=0)
        names = {p.name for p in result.engine.phase_summaries()}
        assert {"Step1-Regularize", "Step2-Randomize", "Step3-RandomGraphCC"} <= names

    def test_smaller_gap_more_rounds(self):
        """Theorem 4: rounds grow with log(1/λ) (through the walk length)."""
        g = paper_random_graph(150, 10, rng=1)
        config = FAST.with_overrides(max_walk_length=4096)
        tight = mpc_connected_components(g, 0.5, config=config, rng=1)
        loose = mpc_connected_components(g, 0.001, config=config, rng=1)
        assert loose.walk_length > tight.walk_length
        assert loose.rounds > tight.rounds

    def test_verify_noop_on_well_connected(self):
        """On an expander the pipeline's labels are already exact — the
        verification broadcast should cost 0 rounds."""
        g = paper_random_graph(300, 12, rng=2)
        result = mpc_connected_components(g, 0.3, config=FAST, rng=2)
        assert result.verify_rounds == 0

    def test_external_engine_reused(self):
        g = paper_random_graph(60, 8, rng=3)
        engine = MPCEngine(256)
        result = mpc_connected_components(g, 0.3, config=FAST, rng=3, engine=engine)
        assert result.engine is engine

    def test_bad_gap_bound_rejected(self):
        g = cycle_graph(10)
        with pytest.raises(ValueError):
            mpc_connected_components(g, 0.0, config=FAST)


class TestAdaptive:
    def test_exactness_without_gap_knowledge(self):
        g, _ = planted_expander_components([60, 90], 8, rng=4)
        result = mpc_connected_components_adaptive(g, config=FAST, rng=4)
        assert components_agree(result.labels, connected_components(g))

    def test_expander_finishes_first_guess(self):
        """Cor 7.1: components with λ₂ ≥ λ'_1 = 1/2... our expanders have
        gap ~0.3 so they finish within the first few guesses."""
        g = paper_random_graph(150, 12, rng=5)
        result = mpc_connected_components_adaptive(g, config=FAST, rng=5)
        assert len(result.iterations) <= 4
        assert result.iterations[-1].active_vertices == 0

    def test_guesses_shrink_geometrically(self):
        g = dumbbell_graph(60, 8, bridges=1, rng=6)
        result = mpc_connected_components_adaptive(g, config=FAST, rng=6)
        guesses = [it.gap_guess for it in result.iterations]
        for a, b in zip(guesses, guesses[1:]):
            assert b == pytest.approx(a**1.1)
        assert components_agree(result.labels, connected_components(g))

    def test_mixed_gaps_finish_at_different_iterations(self):
        """A well-connected component finishes before a weakly connected
        one (the per-component guarantee of Cor 7.1): with too-large gap
        guesses the weak component's walks are too short, the O(1)-round
        broadcast budget is insufficient, and it stays growable."""
        expander = paper_random_graph(100, 12, rng=7)
        weak = cycle_graph(400)
        from repro.graph import disjoint_union

        g, _ = disjoint_union([expander, weak])
        config = FAST.with_overrides(max_walk_length=32, broadcast_budget=4)
        result = mpc_connected_components_adaptive(
            g, config=config, rng=7, gap_exponent=1.5
        )
        assert components_agree(result.labels, connected_components(g))
        assert len(result.iterations) >= 2
        # Some vertices finished strictly before the last iteration.
        assert result.iterations[0].finished_vertices > 0
        assert result.iterations[0].active_vertices > 0
