"""Tests for the Appendix A concentration-bound helpers."""

import numpy as np
import pytest

from repro.analysis import (
    chernoff_multiplicative_bound,
    chernoff_sample_bound,
    hoeffding_bound,
    mcdiarmid_bound,
)


class TestChernoff:
    def test_bound_decreases_with_expectation(self):
        assert chernoff_multiplicative_bound(1000, 0.1) < chernoff_multiplicative_bound(
            10, 0.1
        )

    def test_bound_decreases_with_eps(self):
        assert chernoff_multiplicative_bound(100, 0.5) < chernoff_multiplicative_bound(
            100, 0.1
        )

    def test_bound_capped_at_one(self):
        assert chernoff_multiplicative_bound(0.001, 0.01) == 1.0

    def test_rejects_negative_expectation(self):
        with pytest.raises(ValueError):
            chernoff_multiplicative_bound(-1, 0.1)

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            chernoff_multiplicative_bound(10, 1.5)

    def test_empirically_valid_for_binomial(self):
        """The bound must dominate the empirical deviation frequency."""
        rng = np.random.default_rng(7)
        n, p, eps = 4000, 0.25, 0.1
        mean = n * p
        samples = rng.binomial(n, p, size=4000)
        deviations = np.mean(np.abs(samples - mean) > eps * mean)
        assert deviations <= chernoff_multiplicative_bound(mean, eps) + 0.01


class TestHoeffding:
    def test_monotone_in_n(self):
        assert hoeffding_bound(1000, 0.05) < hoeffding_bound(10, 0.05)

    def test_zero_t_is_trivial(self):
        assert hoeffding_bound(10, 0.0) == 1.0

    def test_rejects_negative_t(self):
        with pytest.raises(ValueError):
            hoeffding_bound(10, -0.1)


class TestMcDiarmid:
    def test_lipschitz_scaling(self):
        """Doubling the Lipschitz constant weakens the bound."""
        assert mcdiarmid_bound(100, 1.0, 5.0) < mcdiarmid_bound(100, 2.0, 5.0)

    def test_rejects_nonpositive_lipschitz(self):
        with pytest.raises(ValueError):
            mcdiarmid_bound(100, 0.0, 1.0)

    def test_empirically_valid_for_nonempty_bins(self):
        """Number of non-empty bins is 1-Lipschitz in the ball placements
        (this is exactly how Proposition B.1 is proved)."""
        rng = np.random.default_rng(11)
        balls, bins, trials = 200, 4000, 2000
        counts = np.empty(trials)
        for i in range(trials):
            counts[i] = np.unique(rng.integers(0, bins, size=balls)).size
        mean = counts.mean()
        t = 20.0
        empirical = np.mean(np.abs(counts - mean) > t)
        assert empirical <= mcdiarmid_bound(balls, 1.0, t) + 0.01


class TestSampleBound:
    def test_inverse_of_chernoff(self):
        eps, fail = 0.1, 1e-6
        mu = chernoff_sample_bound(eps, fail)
        assert chernoff_multiplicative_bound(mu, eps) <= fail * 1.001

    def test_monotone_in_failure_probability(self):
        assert chernoff_sample_bound(0.1, 1e-9) > chernoff_sample_bound(0.1, 1e-3)

    def test_rejects_eps_zero(self):
        with pytest.raises(ValueError):
            chernoff_sample_bound(0.0, 0.5)
