"""Tests for the Section 9 lower-bound machinery."""

import numpy as np
import pytest

from repro.graph import component_count, spectral_gap
from repro.lower_bound import (
    AdversaryGame,
    build_hard_family,
    build_instance,
    family_edge_strategy,
    greedy_multiplicity_strategy,
    play_until_resolved,
    random_pair_strategy,
    verify_promise,
)


@pytest.fixture(scope="module")
def family():
    return build_hard_family(64, 6, count=12, rng=0)


class TestHardFamily:
    def test_member_count(self, family):
        assert family.size == 12

    def test_members_are_regular_expanders(self, family):
        """Claim 9.4 part 1: d-regular with Ω(1) gap."""
        for member in family.members:
            assert member.is_regular(6)
            assert component_count(member) == 1
        assert family.min_gap() > 0.1

    def test_multiplicity_logarithmic(self, family):
        """Claim 9.4 part 2: no edge in more than O(log n) members."""
        assert family.max_multiplicity <= 4 * int(np.log2(64))

    def test_edge_membership_consistent(self, family):
        for key, owners in family.edge_membership.items():
            u, v = key // family.n, key % family.n
            for i in owners:
                neighbors = family.members[i].neighbors(u)
                assert v in neighbors

    def test_query_lower_bound_formula(self, family):
        assert family.query_lower_bound() == family.size // family.max_multiplicity


class TestInstances:
    def test_connected_instance(self, family):
        instance = build_instance(family, bridge_index=3, rng=1)
        assert instance.is_connected
        assert verify_promise(instance)

    def test_disconnected_instance(self, family):
        instance = build_instance(family, bridge_index=None, rng=1)
        assert not instance.is_connected
        assert verify_promise(instance)

    def test_components_are_expanders(self, family):
        """The promise: every component has Ω(1) spectral gap and O(n)
        edges (sparse)."""
        instance = build_instance(family, bridge_index=None, rng=2)
        g = instance.graph()
        assert g.m <= 10 * g.n
        half = family.n // 2
        left, _ = g.subgraph(np.arange(half))
        assert spectral_gap(left) > 0.1

    def test_has_edge_oracle(self, family):
        instance = build_instance(family, bridge_index=0, rng=3)
        g = instance.graph()
        for u, v in g.edges[:30].tolist():
            if u != v:
                assert instance.has_edge(u, v)
        assert not instance.has_edge(0, 1) or instance.has_edge(0, 1) == (
            (0, 1) in {tuple(sorted(e)) for e in g.edges.tolist()}
        )

    def test_bad_bridge_index(self, family):
        with pytest.raises(ValueError):
            build_instance(family, bridge_index=99, rng=0)


class TestAdversary:
    def test_alive_until_all_killed(self, family):
        game = AdversaryGame.fresh(family)
        assert not game.resolved
        assert game.alive_count == family.size

    def test_family_edges_answered_absent(self, family):
        game = AdversaryGame.fresh(family)
        member = family.members[0]
        u, v = member.edges[0]
        if u != v:
            assert game.query(int(u), int(v)) is False
            assert not game.alive[0]

    def test_base_edges_answered_present(self, family):
        instance = build_instance(family, bridge_index=None, rng=4)
        game = AdversaryGame.fresh(family, halves=instance.halves)
        left = instance.halves[0]
        u, v = left.edges[0]
        if u != v:
            assert game.query(int(u), int(v)) is True

    def test_kills_bounded_by_multiplicity(self, family):
        game = AdversaryGame.fresh(family)
        before = game.alive_count
        member = family.members[2]
        u, v = member.edges[1]
        game.query(int(u), int(v))
        assert before - game.alive_count <= family.max_multiplicity

    def test_self_loop_query_rejected(self, family):
        game = AdversaryGame.fresh(family)
        with pytest.raises(ValueError):
            game.query(3, 3)


class TestStrategies:
    def test_greedy_resolves_near_bound(self, family):
        game = AdversaryGame.fresh(family)
        cert = play_until_resolved(game, greedy_multiplicity_strategy())
        assert cert["alive"] == 0
        assert cert["queries"] >= family.query_lower_bound()

    def test_family_edge_strategy_resolves(self, family):
        game = AdversaryGame.fresh(family)
        cert = play_until_resolved(game, family_edge_strategy(rng=0))
        assert cert["alive"] == 0
        # Every query kills at least one member.
        assert cert["queries"] <= family.size

    def test_random_pairs_much_worse(self, family):
        game_blind = AdversaryGame.fresh(family)
        cert_blind = play_until_resolved(
            game_blind, random_pair_strategy(rng=1), max_queries=10**6
        )
        game_informed = AdversaryGame.fresh(family)
        cert_informed = play_until_resolved(game_informed, family_edge_strategy(rng=1))
        assert cert_blind["queries"] > 3 * cert_informed["queries"]

    def test_every_strategy_meets_lower_bound(self, family):
        """Lemma 9.3: no strategy resolves in fewer than
        k / max_multiplicity queries."""
        for strategy in (
            greedy_multiplicity_strategy(),
            family_edge_strategy(rng=2),
        ):
            game = AdversaryGame.fresh(family)
            cert = play_until_resolved(game, strategy)
            assert cert["queries"] >= cert["theoretical_minimum"]

    def test_unresolvable_budget_raises(self, family):
        game = AdversaryGame.fresh(family)
        with pytest.raises(RuntimeError):
            play_until_resolved(game, family_edge_strategy(rng=3), max_queries=1)
