"""Tests for the layered graph data structure (Definition 1)."""

import numpy as np
import pytest

from repro.core import (
    build_jump_tables,
    paths_from_starts,
    sample_layered_graph,
)
from repro.graph import Graph, cycle_graph, permutation_regular_graph


class TestSampling:
    def test_vertex_count(self):
        g = cycle_graph(5)
        s = sample_layered_graph(g, 4, rng=0)
        # n * 2t * (t+1) layered vertices.
        assert s.vertex_count == 5 * 8 * 5

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            sample_layered_graph(cycle_graph(5), 3, rng=0)

    def test_requires_regular(self):
        g = Graph(3, [(0, 1), (1, 2)])
        with pytest.raises(ValueError, match="regular"):
            sample_layered_graph(g, 4, rng=0)

    def test_out_degree_exactly_one_below_last_layer(self):
        g = cycle_graph(4)
        s = sample_layered_graph(g, 2, rng=0)
        below = s.layer_size * s.t
        assert np.all(s.successor[:below] >= 0)
        assert np.all(s.successor[below:] == -1)

    def test_successors_advance_one_layer(self):
        g = permutation_regular_graph(6, 4, rng=0)
        s = sample_layered_graph(g, 4, rng=1)
        below = s.layer_size * s.t
        idx = np.arange(below)
        assert np.array_equal(
            s.layer_of(s.successor[:below]), s.layer_of(idx) + 1
        )

    def test_successors_follow_graph_edges(self):
        g = cycle_graph(7)
        s = sample_layered_graph(g, 4, rng=2)
        below = s.layer_size * s.t
        src = s.base_vertex(np.arange(below))
        dst = s.base_vertex(s.successor[:below])
        hops = (dst - src) % 7
        assert np.all((hops == 1) | (hops == 6))

    def test_index_roundtrip(self):
        g = cycle_graph(4)
        s = sample_layered_graph(g, 2, rng=0)
        idx = s.index(np.array([3]), np.array([1]), np.array([2]))
        assert s.base_vertex(idx)[0] == 3
        assert s.layer_of(idx)[0] == 2

    def test_distinguished_starts_layer_zero(self):
        g = cycle_graph(4)
        s = sample_layered_graph(g, 2, rng=0)
        starts = s.distinguished_starts()
        assert np.all(s.layer_of(starts) == 0)
        assert np.array_equal(s.base_vertex(starts), np.arange(4))


class TestJumpTables:
    def test_table_count(self):
        g = cycle_graph(5)
        s = sample_layered_graph(g, 8, rng=0)
        jumps = build_jump_tables(s)
        assert jumps.doubling_steps == 3  # log2(8)

    def test_jump_distances(self):
        """tables[k] maps layer-0 vertices to layer 2^k (Claim 5.5)."""
        g = permutation_regular_graph(5, 4, rng=0)
        s = sample_layered_graph(g, 8, rng=1)
        jumps = build_jump_tables(s)
        starts = s.distinguished_starts()
        for k, table in enumerate(jumps.tables):
            reached = table[starts]
            assert np.all(s.layer_of(reached) == 2**k)

    def test_last_table_matches_manual_walk(self):
        g = cycle_graph(6)
        s = sample_layered_graph(g, 4, rng=3)
        jumps = build_jump_tables(s)
        starts = s.distinguished_starts()
        manual = starts.copy()
        for _ in range(4):
            manual = s.successor[manual]
        assert np.array_equal(jumps.tables[-1][starts], manual)


class TestPaths:
    def test_path_shape_and_layers(self):
        g = permutation_regular_graph(6, 4, rng=0)
        s = sample_layered_graph(g, 8, rng=1)
        jumps = build_jump_tables(s)
        starts = s.distinguished_starts()
        paths = paths_from_starts(s, jumps, starts)
        assert paths.shape == (6, 9)
        for j in range(9):
            assert np.all(s.layer_of(paths[:, j]) == j)

    def test_path_consecutive_successors(self):
        g = cycle_graph(5)
        s = sample_layered_graph(g, 8, rng=4)
        jumps = build_jump_tables(s)
        paths = paths_from_starts(s, jumps, s.distinguished_starts())
        for j in range(8):
            assert np.array_equal(s.successor[paths[:, j]], paths[:, j + 1])

    def test_path_projects_to_graph_walk(self):
        g = cycle_graph(9)
        s = sample_layered_graph(g, 4, rng=5)
        jumps = build_jump_tables(s)
        paths = paths_from_starts(s, jumps, s.distinguished_starts())
        walk = s.base_vertex(paths)
        steps = (walk[:, 1:] - walk[:, :-1]) % 9
        assert np.all((steps == 1) | (steps == 8))
