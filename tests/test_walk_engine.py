"""Tests for SimpleRandomWalk, independence detection, and the direct
walker (Theorem 3, Lemmas 5.3/5.6)."""

import numpy as np
import pytest
from scipy import stats

from repro.core import (
    detect_independence,
    direct_walk_targets,
    independent_random_walks,
    next_power_of_two,
    simple_random_walk,
)
from repro.graph import (
    complete_graph,
    cycle_graph,
    permutation_regular_graph,
    walk_distribution,
)
from repro.mpc import MPCEngine


class TestNextPowerOfTwo:
    def test_values(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(3) == 4
        assert next_power_of_two(8) == 8
        assert next_power_of_two(9) == 16

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)


class TestSimpleRandomWalk:
    def test_targets_in_component(self):
        g = cycle_graph(8)
        run = simple_random_walk(g, 4, rng=0)
        assert run.targets.shape == (8,)
        assert np.all((0 <= run.targets) & (run.targets < 8))

    def test_parity_respected_on_even_cycle(self):
        """A 4-step walk on an even cycle ends at even distance — a sharp
        distributional check that the layered structure walks correctly."""
        g = cycle_graph(8)
        run = simple_random_walk(g, 4, rng=1)
        displacement = (run.targets - np.arange(8)) % 8
        assert np.all(displacement % 2 == 0)

    def test_rounds_charged_o_log_t(self):
        g = permutation_regular_graph(16, 4, rng=0)
        engine_short = MPCEngine(10**6)
        simple_random_walk(g, 4, rng=0, engine=engine_short)
        engine_long = MPCEngine(10**6)
        simple_random_walk(g, 64, rng=0, engine=engine_long)
        # log2(64)/log2(4) = 3x the doubling iterations, but rounds grow
        # strictly less than linearly in t (16x).
        assert engine_short.rounds < engine_long.rounds
        assert engine_long.rounds < 8 * engine_short.rounds

    def test_target_distribution_matches_walk_matrix(self):
        """Empirical target frequencies ≈ W^t e_v (exact distribution)."""
        g = permutation_regular_graph(6, 4, rng=0)
        t = 4
        start = 2
        expected = walk_distribution(g, start, t)
        rng = np.random.default_rng(7)
        counts = np.zeros(6)
        trials = 3000
        for _ in range(trials):
            run = simple_random_walk(g, t, rng=rng)
            counts[run.targets[start]] += 1
        observed = counts / trials
        support = expected > 1e-12
        chi2 = trials * np.sum(
            (observed[support] - expected[support]) ** 2 / expected[support]
        )
        dof = int(support.sum()) - 1
        assert chi2 < stats.chi2.ppf(0.999, dof)

    def test_independence_survival_rate(self):
        """Lemma 5.3: each start survives with probability >= 1/2."""
        g = permutation_regular_graph(24, 4, rng=0)
        rng = np.random.default_rng(3)
        rates = []
        for _ in range(30):
            run = simple_random_walk(g, 8, rng=rng)
            rates.append(run.independent.mean())
        assert np.mean(rates) >= 0.5


class TestDetectIndependence:
    def test_disjoint_paths_kept(self):
        paths = np.array([[0, 1], [2, 3], [4, 5]])
        assert detect_independence(paths).all()

    def test_shared_vertex_kills_both(self):
        paths = np.array([[0, 1], [2, 1], [4, 5]])
        flags = detect_independence(paths)
        assert flags.tolist() == [False, False, True]

    def test_three_way_collision(self):
        paths = np.array([[0, 9], [1, 9], [2, 9]])
        assert not detect_independence(paths).any()


class TestIndependentRandomWalks:
    def test_every_vertex_gets_target(self):
        g = permutation_regular_graph(20, 4, rng=0)
        targets = independent_random_walks(g, 8, rng=1)
        assert np.all(targets >= 0)
        assert targets.shape == (20,)

    def test_engine_charged_once_for_parallel_runs(self):
        g = permutation_regular_graph(20, 4, rng=0)
        engine = MPCEngine(10**6)
        independent_random_walks(g, 8, rng=1, engine=engine)
        single = MPCEngine(10**6)
        simple_random_walk(g, 8, rng=1, engine=single)
        assert engine.rounds == single.rounds

    def test_max_runs_exceeded_raises(self):
        g = complete_graph(4)
        with pytest.raises(RuntimeError, match="independent walks"):
            independent_random_walks(g, 2, rng=0, max_runs=0)


class TestDirectWalker:
    def test_shape(self):
        g = permutation_regular_graph(10, 4, rng=0)
        targets = direct_walk_targets(g, 8, 5, rng=0)
        assert targets.shape == (10, 5)

    def test_requires_regular(self):
        from repro.graph import Graph

        with pytest.raises(ValueError):
            direct_walk_targets(Graph(3, [(0, 1), (1, 2)]), 4, 2, rng=0)

    def test_lazy_distribution_matches_matrix(self):
        """Direct lazy walker matches the lazy walk distribution W̄^t e_v —
        the distributional equivalence DESIGN.md claims for the scale
        substitute."""
        g = cycle_graph(5)
        t = 6
        expected = walk_distribution(g, 0, t, lazy=True)
        targets = direct_walk_targets(g, t, 4000, rng=11)[0]
        observed = np.bincount(targets, minlength=5) / targets.size
        chi2 = targets.size * np.sum((observed - expected) ** 2 / expected)
        assert chi2 < stats.chi2.ppf(0.999, 4)

    def test_non_lazy_parity(self):
        g = cycle_graph(8)
        targets = direct_walk_targets(g, 4, 3, rng=0, lazy=False)
        displacement = (targets - np.arange(8)[:, None]) % 8
        assert np.all(displacement % 2 == 0)

    def test_columns_are_independent_walks(self):
        """Independence smoke test: correlation between two columns of
        endpoints across repetitions is near zero on a vertex-transitive
        graph."""
        g = cycle_graph(16)
        rng = np.random.default_rng(5)
        a, b = [], []
        for _ in range(400):
            targets = direct_walk_targets(g, 8, 2, rng=rng)
            a.append(targets[0, 0])
            b.append(targets[0, 1])
        corr = np.corrcoef(a, b)[0, 1]
        assert abs(corr) < 0.15

    def test_engine_charges_match_theorem3(self):
        g = permutation_regular_graph(10, 4, rng=0)
        direct_engine = MPCEngine(10**6)
        direct_walk_targets(g, 8, 3, rng=0, engine=direct_engine)
        layered_engine = MPCEngine(10**6)
        simple_random_walk(g, 8, rng=0, engine=layered_engine)
        assert direct_engine.rounds == layered_engine.rounds
