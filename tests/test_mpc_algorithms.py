"""Tests for the faithful Cluster executions of the paper's per-round ops.

These certify that the round counts the production pipeline *charges* are
achievable under hard per-machine memory limits: leader election in 2
communication rounds, one broadcast level per exchange.
"""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    components_agree,
    connected_components,
    cycle_graph,
    paper_random_graph,
    path_graph,
)
from repro.mpc import (
    Cluster,
    MachineMemoryError,
    distributed_components,
    distributed_leader_election,
    distributed_min_label_round,
    scatter_graph_state,
)


def roomy_cluster(n_items: int, machines: int = 8) -> Cluster:
    return Cluster(machines, max(16, 6 * n_items // machines))


class TestDistributedLeaderElection:
    def test_two_rounds(self):
        g = cycle_graph(24)
        cluster = roomy_cluster(24 + 2 * g.m)
        distributed_leader_election(cluster, 24, g.edges, 0.5, seed=0)
        assert cluster.rounds_executed == 2

    def test_matches_are_valid_star_edges(self):
        g = paper_random_graph(60, 8, rng=0).simplify()
        cluster = roomy_cluster(60 + 2 * g.m)
        matches = distributed_leader_election(cluster, 60, g.edges, 0.3, seed=1)
        adjacency = {tuple(sorted(e)) for e in g.edges.tolist()}
        from repro.sketch import KWiseHash

        coin = KWiseHash(3, rng=1)

        def is_leader(v):
            return coin.uniform_floats(np.array([v]))[0] < 0.3

        for w, leader in matches.items():
            assert (min(w, leader), max(w, leader)) in adjacency
            assert not is_leader(w)
            assert is_leader(leader)

    def test_deterministic_given_seed(self):
        g = paper_random_graph(40, 6, rng=2).simplify()
        a = distributed_leader_election(
            roomy_cluster(40 + 2 * g.m), 40, g.edges, 0.4, seed=7
        )
        b = distributed_leader_election(
            roomy_cluster(40 + 2 * g.m), 40, g.edges, 0.4, seed=7
        )
        assert a == b

    def test_prob_zero_no_matches(self):
        g = cycle_graph(10)
        cluster = roomy_cluster(10 + 2 * g.m)
        assert distributed_leader_election(cluster, 10, g.edges, 0.0, seed=0) == {}

    def test_memory_limits_enforced(self):
        g = paper_random_graph(60, 8, rng=0)
        tight = Cluster(2, 20)  # far too small for the state
        with pytest.raises(MachineMemoryError):
            distributed_leader_election(tight, 60, g.edges, 0.3, seed=0)


class TestDistributedBroadcastLevel:
    def test_one_level_propagates_neighbors(self):
        g = path_graph(6)
        cluster = roomy_cluster(6 + 2 * g.m)
        scatter_graph_state(cluster, 6, g.edges)
        labels = distributed_min_label_round(cluster, 6)
        # After one level every vertex holds min over closed neighbourhood.
        assert labels[1] == 0
        assert labels[2] == 1
        assert labels[5] == 4

    def test_level_uses_one_exchange_plus_local_fold(self):
        g = cycle_graph(12)
        cluster = roomy_cluster(12 + 2 * g.m)
        scatter_graph_state(cluster, 12, g.edges)
        distributed_min_label_round(cluster, 12)
        # 2 cluster rounds, of which the second (fold) is machine-local;
        # the communication count matching the engine's charge is 1.
        assert cluster.rounds_executed == 2


class TestDistributedComponents:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: path_graph(20),
            lambda: cycle_graph(15),
            lambda: Graph(8, [(0, 1), (2, 3), (3, 4), (6, 7)]),
            lambda: paper_random_graph(40, 4, rng=3),
        ],
        ids=["path", "cycle", "multi", "random"],
    )
    def test_matches_reference(self, make):
        g = make()
        labels, levels = distributed_components(
            lambda: roomy_cluster(g.n + 2 * g.m), g.n, g.edges
        )
        assert components_agree(labels, connected_components(g))
        assert levels >= 1 or g.m == 0

    def test_levels_bounded_by_eccentricity(self):
        g = path_graph(12)
        _, levels = distributed_components(
            lambda: roomy_cluster(12 + 2 * g.m), 12, g.edges
        )
        assert levels <= 12

    def test_nonconvergence_guard(self):
        g = path_graph(30)
        with pytest.raises(RuntimeError):
            distributed_components(
                lambda: roomy_cluster(30 + 2 * g.m), 30, g.edges, max_levels=3
            )
