"""RpcBackend certification: trace replay bit-identity, counter parity,
wire thresholds, digest dedup, stats schema, and the registry error fix.

The certification order mirrors the deployment story: the wire backend
must first replay captured per-engine plan streams bit-identically
(outputs *and* exchange/byte counters) before it joins the live
differential matrix in ``tests/test_differential.py``.
"""

import numpy as np
import pytest

import repro
from repro.bench.workloads import Workload
from repro.mpc import (
    BACKENDS,
    MPCEngine,
    RpcBackend,
    ShardedBackend,
    backend_names,
    content_digest,
    graph_digest,
    make_backend,
    replay,
)
from repro.mpc.backends import TRANSPORT_STATS_ZERO

SEED = 23
CONFIG = repro.PipelineConfig(
    delta=0.5, expander_degree=4, max_walk_length=32, oversample=4,
    max_phases=2,
)


@pytest.fixture(scope="module")
def rpc_backend():
    backend = RpcBackend(shard_memory=64, workers=2, min_wire_items=0)
    yield backend
    backend.close()


# ---------------------------------------------------------------------------
# Replay certification (per engine)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine_name", ["paper", "liu_tarjan", "exponentiation"])
def test_replay_certifies_rpc_backend(tmp_path, engine_name):
    # Capture the engine's plan stream on the serial sharded backend...
    graph = Workload("permutation_regular", 160, {"degree": 6}).build(SEED)
    path = tmp_path / "trace.json"
    from repro.engines import get_engine

    with MPCEngine.for_delta(
        graph.n + graph.m, CONFIG.delta, backend=ShardedBackend(),
        trace=str(path),
    ) as engine:
        get_engine(engine_name).run(
            graph, 0.1, config=CONFIG, rng=SEED, mpc=engine
        )
        captured = engine.backend.stats()
    # ...then replay it across the wire with every op forced through
    # the frames: outputs and the gated counters must match exactly.
    rpc = RpcBackend(workers=2, min_wire_items=0)
    try:
        replayed = replay(path, backend=rpc)
        assert replayed.ok, replayed.mismatches[:3]
        assert replayed.stats.exchanges == captured.exchanges
        assert replayed.stats.bytes_exchanged == captured.bytes_exchanged
        assert replayed.stats.op_counts == captured.op_counts
        transport = rpc.transport_stats()
        if captured.exchanges:
            assert transport["op_frames"] > 0
            assert transport["op_wire_bytes"] > 0
    finally:
        rpc.close()


# ---------------------------------------------------------------------------
# Kernel parity + wire threshold
# ---------------------------------------------------------------------------


class TestKernelParity:
    def _inputs(self, n=4096):
        rng = np.random.default_rng(SEED)
        return (
            rng.integers(0, 500, n),
            rng.integers(0, 1 << 40, (n, 2)),
            rng.integers(0, 1 << 40, n // 2),
            rng.integers(0, n // 2, n),
        )

    def test_ops_bit_identical_to_sharded(self, rpc_backend):
        keys, values, table, queries = self._inputs()
        ref = ShardedBackend(shard_memory=64)
        assert np.array_equal(
            ref.sort(values, order_by=keys),
            rpc_backend.sort(values, order_by=keys),
        )
        assert np.array_equal(
            ref.search(table, queries), rpc_backend.search(table, queries)
        )
        for op in ("min", "max", "sum"):
            unique_a, reduced_a = ref.reduce_by_key(keys, values, op)
            unique_b, reduced_b = rpc_backend.reduce_by_key(keys, values, op)
            assert np.array_equal(unique_a, unique_b)
            assert np.array_equal(reduced_a, reduced_b)
        labels = np.random.default_rng(1).integers(0, 1 << 30, 900)
        send = np.random.default_rng(2).integers(0, 900, 1200)
        recv = np.random.default_rng(3).integers(0, 900, 1200)
        labels_a, incoming_a = ref.min_label_exchange(labels, send, recv)
        labels_b, incoming_b = rpc_backend.min_label_exchange(
            labels, send, recv
        )
        assert np.array_equal(labels_a, labels_b)
        assert np.array_equal(incoming_a, incoming_b)
        # The sharded accounting is inherited, not reimplemented: the
        # model counters agree exactly.
        assert ref.stats().exchanges == rpc_backend.stats().exchanges

    def test_min_wire_items_keeps_small_ops_serial(self):
        backend = RpcBackend(shard_memory=64, workers=2, min_wire_items=10**9)
        try:
            keys, values, table, queries = self._inputs(512)
            backend.sort(values, order_by=keys)
            backend.search(table, queries)
            assert backend.transport_stats()["op_frames"] == 0
        finally:
            backend.close()

    def test_digest_dedup_ships_repeats_as_references(self, rpc_backend):
        _, _, table, queries = self._inputs()
        before = dict(rpc_backend.transport_stats())
        rpc_backend.search(table, queries)
        rpc_backend.search(table, queries)
        after = rpc_backend.transport_stats()
        # The second identical op resolves both arrays from the worker
        # caches: strictly more hits, no new misses beyond the first.
        assert after["digest_hits"] > before["digest_hits"]
        assert (
            after["digest_misses"] - before["digest_misses"]
            <= 2 * rpc_backend.workers
        )

    def test_object_dtype_falls_back_to_serial(self, rpc_backend):
        values = np.array([{"a": 1}, {"b": 2}, None, "x"] * 64, dtype=object)
        keys = np.arange(values.shape[0])
        before = rpc_backend.transport_stats()["op_frames"]
        out = rpc_backend.sort(values, order_by=keys[::-1])
        assert out[0] == "x"
        assert rpc_backend.transport_stats()["op_frames"] == before


# ---------------------------------------------------------------------------
# Stats schema
# ---------------------------------------------------------------------------


class TestStatsSchema:
    def test_transport_block_always_emitted(self):
        # One schema for every backend: non-wire backends emit the
        # zero-filled transport block.
        doc = ShardedBackend(shard_memory=64).stats().to_json()
        assert doc["transport"] == TRANSPORT_STATS_ZERO

    def test_rpc_transport_block_schema(self, rpc_backend):
        doc = rpc_backend.stats().to_json()
        assert set(doc["transport"]) == set(TRANSPORT_STATS_ZERO)
        assert doc["workers"] == rpc_backend.workers

    def test_reset_clears_transport_counters(self):
        backend = RpcBackend(shard_memory=64, workers=2, min_wire_items=0)
        try:
            backend.search(np.arange(100), np.arange(50))
            assert backend.transport_stats()["op_frames"] > 0
            backend.reset()
            assert backend.transport_stats() == dict(TRANSPORT_STATS_ZERO)
        finally:
            backend.close()


# ---------------------------------------------------------------------------
# Registry error message (regression: bare KeyError on unknown names)
# ---------------------------------------------------------------------------


class TestRegistryErrors:
    def test_unknown_backend_lists_available_names(self):
        with pytest.raises(ValueError, match="unknown backend 'nope'"):
            make_backend("nope")
        with pytest.raises(ValueError, match="rpc"):
            make_backend("nope")

    def test_rpc_is_registered(self):
        assert "rpc" in backend_names()
        backend = make_backend("rpc", workers=2)
        try:
            assert isinstance(backend, RpcBackend)
        finally:
            backend.close()

    def test_constructor_keyerror_is_not_mislabelled(self):
        # A KeyError escaping a backend *constructor* must propagate
        # as-is instead of being rewrapped as an unknown-name error.
        class Exploding:
            def __init__(self, **kwargs):
                raise KeyError("inner constructor failure")

        BACKENDS["exploding"] = Exploding
        try:
            with pytest.raises(KeyError, match="inner constructor failure"):
                make_backend("exploding")
        finally:
            del BACKENDS["exploding"]


# ---------------------------------------------------------------------------
# Digest helpers
# ---------------------------------------------------------------------------


class TestDigests:
    def test_content_digest_covers_dtype_shape_payload(self):
        a = np.arange(6, dtype=np.int64)
        assert content_digest(a) == content_digest(a.copy())
        assert content_digest(a) != content_digest(a.astype(np.int32))
        assert content_digest(a) != content_digest(a.reshape(2, 3))
        assert content_digest(np.int8(-3)) != content_digest(
            np.array([-3], dtype=np.int8)
        )

    def test_graph_digest_keys_by_vertices_and_edges(self):
        edges = np.array([[0, 1], [1, 2]], dtype=np.int64)
        assert graph_digest(3, edges) == graph_digest(3, edges.copy())
        assert graph_digest(3, edges) != graph_digest(4, edges)
        assert graph_digest(3, edges) != graph_digest(3, edges[::-1])
