"""Wire codec property tests: round-trips and typed malformed-frame errors.

Hypothesis drives arbitrary headers, dtypes, shapes, and step sequences
through encode → frame → decode and asserts bit-identity; every
corruption mode (bad magic, truncation, oversized announcements, junk
JSON, dangling digest references, object dtypes) must raise the typed
:class:`~repro.mpc.rpc.RpcProtocolError` — never hang, never leak a
bare ``struct``/``json``/``UnicodeDecodeError``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc.rpc import (
    FRAME_MAGIC,
    MAX_BLOB_BYTES,
    MAX_HEADER_BYTES,
    RpcProtocolError,
    decode_frame,
    encode_frame,
    pack_arrays,
    unpack_arrays,
)

DTYPES = [
    np.int8, np.uint8, np.int16, np.int32, np.uint32, np.int64, np.uint64,
    np.float32, np.float64, np.bool_,
]


json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)

headers = st.dictionaries(
    st.text(min_size=1, max_size=20),
    st.one_of(
        json_scalars,
        st.lists(json_scalars, max_size=5),
        st.dictionaries(st.text(max_size=10), json_scalars, max_size=4),
    ),
    max_size=6,
)


@st.composite
def arrays(draw):
    dtype = draw(st.sampled_from(DTYPES))
    shape = tuple(
        draw(st.lists(st.integers(0, 7), min_size=0, max_size=3))
    )
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    if dtype is np.bool_:
        return rng.integers(0, 2, size=shape).astype(bool)
    if np.issubdtype(dtype, np.floating):
        return rng.standard_normal(size=shape).astype(dtype)
    info = np.iinfo(dtype)
    return rng.integers(
        info.min, info.max, size=shape, endpoint=True, dtype=dtype
    )


class TestFrameRoundTrip:
    @given(header=headers, blob=st.binary(max_size=512))
    @settings(max_examples=60, deadline=None)
    def test_frame_round_trips(self, header, blob):
        decoded_header, decoded_blob = decode_frame(encode_frame(header, blob))
        assert decoded_header == header
        assert decoded_blob == blob

    @given(
        named=st.dictionaries(
            st.text(min_size=1, max_size=12), arrays(), min_size=0, max_size=5
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_arrays_round_trip_bit_identical(self, named):
        meta, blob, _ = pack_arrays(named)
        decoded = unpack_arrays(meta, blob, {})
        assert set(decoded) == set(named)
        for slot, original in named.items():
            assert decoded[slot].dtype == original.dtype
            assert decoded[slot].shape == original.shape
            assert np.array_equal(decoded[slot], original, equal_nan=False)

    @given(array=arrays())
    @settings(max_examples=40, deadline=None)
    def test_digest_dedup_round_trips(self, array):
        # The same array twice: the second slot is a bare reference and
        # must decode identical through the per-frame cache.
        meta, blob, shipped = pack_arrays({"a": array, "b": array})
        assert len(shipped) == 1
        assert meta[1].get("cached") is True
        decoded = unpack_arrays(meta, blob, {})
        assert np.array_equal(decoded["a"], decoded["b"])

    @given(
        named=st.dictionaries(
            st.text(min_size=1, max_size=8), arrays(), min_size=1, max_size=3
        ),
        header=headers,
    )
    @settings(max_examples=40, deadline=None)
    def test_step_frames_round_trip(self, named, header):
        # An op-shaped frame: steps in the header, arrays in the blob.
        meta, blob, _ = pack_arrays(named)
        steps = [
            {"op": "search", "inputs": sorted(named), "outputs": ["out"],
             "params": {"lo": 0, "hi": 3}},
        ]
        frame = encode_frame(
            dict(header, kind="op", steps=steps, arrays=meta), blob
        )
        decoded_header, decoded_blob = decode_frame(frame)
        assert decoded_header["steps"] == steps
        decoded = unpack_arrays(decoded_header["arrays"], decoded_blob, {})
        for slot, original in named.items():
            assert np.array_equal(decoded[slot], original)


class TestMalformedFrames:
    @given(junk=st.binary(max_size=11))
    @settings(max_examples=30, deadline=None)
    def test_truncated_prefix_is_typed(self, junk):
        with pytest.raises(RpcProtocolError):
            decode_frame(junk)

    @given(header=headers, blob=st.binary(max_size=64), cut=st.integers(1, 50))
    @settings(max_examples=40, deadline=None)
    def test_truncated_frame_is_typed(self, header, blob, cut):
        frame = encode_frame(header, blob)
        truncated = frame[: max(0, len(frame) - cut)]
        with pytest.raises(RpcProtocolError):
            decode_frame(truncated)

    def test_bad_magic_is_typed(self):
        frame = bytearray(encode_frame({"x": 1}))
        frame[:4] = b"EVIL"
        with pytest.raises(RpcProtocolError, match="magic"):
            decode_frame(bytes(frame))

    def test_oversized_announcement_is_typed(self):
        import struct

        prefix = struct.pack("!4sII", FRAME_MAGIC, MAX_HEADER_BYTES + 1, 0)
        with pytest.raises(RpcProtocolError, match="oversized"):
            decode_frame(prefix)
        prefix = struct.pack("!4sII", FRAME_MAGIC, 0, MAX_BLOB_BYTES + 1)
        with pytest.raises(RpcProtocolError, match="oversized"):
            decode_frame(prefix)

    def test_trailing_garbage_is_typed(self):
        frame = encode_frame({"x": 1}, b"data")
        with pytest.raises(RpcProtocolError, match="length"):
            decode_frame(frame + b"extra")

    def test_invalid_json_header_is_typed(self):
        import struct

        head = b"{not json"
        frame = struct.pack("!4sII", FRAME_MAGIC, len(head), 0) + head
        with pytest.raises(RpcProtocolError, match="invalid"):
            decode_frame(frame)

    def test_non_object_header_is_typed(self):
        import struct

        head = b"[1, 2]"
        frame = struct.pack("!4sII", FRAME_MAGIC, len(head), 0) + head
        with pytest.raises(RpcProtocolError, match="object"):
            decode_frame(frame)

    def test_unencodable_header_is_typed(self):
        with pytest.raises(RpcProtocolError, match="unencodable"):
            encode_frame({"bad": object()})

    def test_object_dtype_rejected(self):
        with pytest.raises(RpcProtocolError, match="object dtype"):
            pack_arrays({"a": np.array([object()])})

    def test_unknown_digest_reference_is_typed(self):
        meta = [{"slot": "a", "digest": "feedbead", "cached": True}]
        with pytest.raises(RpcProtocolError, match="unknown cached digest"):
            unpack_arrays(meta, b"", {})
        with pytest.raises(RpcProtocolError, match="unknown cached digest"):
            unpack_arrays(meta, b"", None)

    def test_out_of_range_payload_is_typed(self):
        meta, blob, _ = pack_arrays({"a": np.arange(8)})
        meta[0]["nbytes"] += 8
        with pytest.raises(RpcProtocolError, match="exceeds blob"):
            unpack_arrays(meta, blob, {})

    def test_inconsistent_shape_is_typed(self):
        meta, blob, _ = pack_arrays({"a": np.arange(8)})
        meta[0]["shape"] = [4]
        with pytest.raises(RpcProtocolError, match="imply"):
            unpack_arrays(meta, blob, {})

    def test_bad_dtype_string_is_typed(self):
        meta, blob, _ = pack_arrays({"a": np.arange(8)})
        meta[0]["dtype"] = "not-a-dtype"
        with pytest.raises(RpcProtocolError, match="does not decode"):
            unpack_arrays(meta, blob, {})
