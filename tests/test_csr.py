"""Property and unit tests for the frozen zero-copy CSR index.

The executor stack ships :class:`~repro.graph.CSRIndex` arrays through
``ShmArena`` pinning and wire-level digest dedup, so the invariants here
are load-bearing for the whole CSR fast path: exact edge-list
round-trips, the ``indptr[-1] == 2m`` slot accounting, sorted neighbour
runs, the read-only/owning zero-copy contract, and build determinism —
on generated inputs covering empty graphs, isolated vertices,
duplicate/parallel edges, and self-loops.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import (
    CSRIndex,
    Graph,
    build_csr_arrays,
    csr_enabled,
    use_csr,
)

common_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def edges_strategy(n: int, max_edges: int = 60):
    """Arbitrary endpoint pairs in [0, n): duplicates and loops included."""
    return st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=max_edges,
    )


def draw_edges(data, n) -> np.ndarray:
    return np.array(
        data.draw(edges_strategy(n)) or [], dtype=np.int64
    ).reshape(-1, 2)


# ---------------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------------


@common_settings
@given(n=st.integers(1, 24), data=st.data())
def test_round_trip_is_exact(n, data):
    """to_edges() recovers the input edge list bit for bit — same edge
    ids, same endpoint order within each row, not just the same multiset."""
    edges = draw_edges(data, n)
    index = CSRIndex.from_edges(n, edges)
    assert np.array_equal(index.to_edges(), edges)


@common_settings
@given(n=st.integers(1, 24), data=st.data())
def test_slot_accounting(n, data):
    """indptr[-1] == 2m == len(indices) == len(halfedges); the slot
    multiset is exactly the directed-incidence multiset."""
    edges = draw_edges(data, n)
    index = CSRIndex.from_edges(n, edges)
    m = edges.shape[0]
    assert index.m == m
    assert index.indptr.shape == (n + 1,)
    assert index.indptr[0] == 0
    assert index.indptr[-1] == 2 * m
    assert index.indices.shape == (2 * m,)
    assert index.halfedges.shape == (2 * m,)
    assert int(index.degrees.sum()) == 2 * m
    # Each half-edge id appears exactly once.
    assert np.array_equal(np.sort(index.halfedges), np.arange(2 * m))
    # (owner, head) multiset == directed incidences of the edge list.
    owner = index.slot_owners()
    got = np.sort(owner * n + index.indices)
    want = np.sort(
        np.concatenate([edges[:, 0] * n + edges[:, 1],
                        edges[:, 1] * n + edges[:, 0]])
    )
    assert np.array_equal(got, want)


@common_settings
@given(n=st.integers(1, 24), data=st.data())
def test_neighbour_runs_are_sorted(n, data):
    edges = draw_edges(data, n)
    index = CSRIndex.from_edges(n, edges)
    for v in range(n):
        run = index.neighbors(v)
        assert np.all(run[:-1] <= run[1:])


@common_settings
@given(n=st.integers(1, 24), data=st.data())
def test_build_is_deterministic(n, data):
    """Two builds of the same edge list are bit-identical — the layout
    is a pure function of the input, never of memory or hash order."""
    edges = draw_edges(data, n)
    a = build_csr_arrays(edges, n)
    b = build_csr_arrays(edges, n)
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


@common_settings
@given(n=st.integers(1, 24), data=st.data())
def test_zero_copy_contract(n, data):
    """Every array is read-only, C-contiguous int64 owning its data —
    the exact preconditions of ShmArena read-only pinning."""
    edges = draw_edges(data, n)
    index = CSRIndex.from_edges(n, edges)
    for array in (index.indptr, index.indices, index.halfedges):
        assert array.dtype == np.int64
        assert array.flags.c_contiguous
        assert array.base is None
        assert not array.flags.writeable
        with pytest.raises(ValueError):
            array[:1] = 0


@common_settings
@given(n=st.integers(1, 20), data=st.data())
def test_matches_graph_core(n, data):
    """Degrees and per-vertex neighbour multisets agree with Graph."""
    edges = draw_edges(data, n)
    index = CSRIndex.from_edges(n, edges)
    g = Graph(n, edges)
    assert np.array_equal(index.degrees, g.degrees)
    for v in range(n):
        assert sorted(index.neighbors(v).tolist()) == sorted(
            g.neighbors(v).tolist()
        )


# ---------------------------------------------------------------------------
# Edge-case units: the generator shapes that bit us
# ---------------------------------------------------------------------------


class TestEdgeCases:
    def test_empty_graph(self):
        index = CSRIndex.from_edges(4, np.empty((0, 2), dtype=np.int64))
        assert index.m == 0
        assert index.indptr.tolist() == [0] * 5
        assert index.to_edges().shape == (0, 2)

    def test_zero_vertices(self):
        index = CSRIndex.from_edges(0, np.empty((0, 2), dtype=np.int64))
        assert index.n == 0 and index.m == 0
        assert index.indptr.tolist() == [0]

    def test_flat_empty_input_reshaped(self):
        # Generators sometimes hand over np.array([]) for edgeless graphs.
        index = CSRIndex.from_edges(3, np.array([], dtype=np.int64))
        assert index.m == 0

    def test_isolated_vertices_get_empty_runs(self):
        index = CSRIndex.from_edges(5, np.array([[1, 3]]))
        assert index.degrees.tolist() == [0, 1, 0, 1, 0]
        for v in (0, 2, 4):
            assert index.neighbors(v).size == 0

    def test_self_loop_two_slots_same_row(self):
        index = CSRIndex.from_edges(2, np.array([[0, 0]]))
        assert index.degrees.tolist() == [2, 0]
        assert index.neighbors(0).tolist() == [0, 0]
        assert np.array_equal(index.to_edges(), [[0, 0]])

    def test_parallel_edges_keep_their_slots(self):
        edges = np.array([[0, 1], [0, 1], [1, 0]])
        index = CSRIndex.from_edges(2, edges)
        assert index.degrees.tolist() == [3, 3]
        assert index.neighbors(0).tolist() == [1, 1, 1]
        assert np.array_equal(index.to_edges(), edges)

    def test_edge_ids_pair_half_edges(self):
        edges = np.array([[0, 1], [1, 2], [2, 2]])
        index = CSRIndex.from_edges(3, edges)
        counts = np.bincount(index.edge_ids, minlength=3)
        assert counts.tolist() == [2, 2, 2]

    def test_nbytes_counts_all_three_arrays(self):
        index = CSRIndex.from_edges(3, np.array([[0, 1]]))
        assert index.nbytes == (4 + 2 + 2) * 8


class TestValidation:
    def test_rejects_bad_edge_shape(self):
        with pytest.raises(ValueError):
            build_csr_arrays(np.array([[0, 1, 2]]), 3)

    def test_rejects_out_of_range_endpoints(self):
        with pytest.raises(ValueError):
            build_csr_arrays(np.array([[0, 2]]), 2)
        with pytest.raises(ValueError):
            build_csr_arrays(np.array([[-1, 0]]), 2)

    def test_adopt_rejects_bad_indptr(self):
        index = CSRIndex.from_edges(3, np.array([[0, 1]]))
        bad = index.indptr[:-1].copy()
        with pytest.raises(ValueError):
            CSRIndex.adopt(3, bad, index.indices, index.halfedges)
        decreasing = np.array([0, 2, 1, 2], dtype=np.int64)
        with pytest.raises(ValueError):
            CSRIndex.adopt(3, decreasing, index.indices, index.halfedges)

    def test_adopt_rejects_odd_slot_count(self):
        indptr = np.array([0, 1], dtype=np.int64)
        one = np.zeros(1, dtype=np.int64)
        with pytest.raises(ValueError):
            CSRIndex.adopt(1, indptr, one, one)

    def test_adopt_rejects_out_of_range_values(self):
        index = CSRIndex.from_edges(2, np.array([[0, 1]]))
        bad = np.array([0, 5], dtype=np.int64)
        with pytest.raises(ValueError):
            CSRIndex.adopt(2, index.indptr, bad, index.halfedges)


class TestAdoptAliasing:
    def test_adopt_frozen_arrays_is_zero_copy(self):
        index = CSRIndex.from_edges(4, np.array([[0, 1], [2, 3]]))
        again = CSRIndex.adopt(
            4, index.indptr, index.indices, index.halfedges
        )
        assert again.indptr is index.indptr
        assert again.indices is index.indices
        assert again.halfedges is index.halfedges

    def test_adopt_writeable_arrays_copies_and_freezes(self):
        """Replayed plan outputs are writeable: adoption must defensively
        copy so later caller mutations cannot corrupt the frozen index."""
        indptr, indices, halfedges = build_csr_arrays(
            np.array([[0, 1], [1, 2]]), 3
        )
        w_indices = indices.copy()  # writeable
        index = CSRIndex.adopt(3, indptr, w_indices, halfedges)
        assert not index.indices.flags.writeable
        assert index.indices is not w_indices
        w_indices[0] = 2
        assert index.indices[0] != 2 or indices[0] == 2

    def test_from_graph_matches_from_edges(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 2), (3, 4)])
        a = CSRIndex.from_graph(g)
        b = CSRIndex.from_edges(g.n, g.edges)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.halfedges, b.halfedges)


class TestToggle:
    def test_default_is_enabled(self):
        assert csr_enabled()

    def test_use_csr_scopes_override(self):
        with use_csr(False):
            assert not csr_enabled()
            with use_csr(True):
                assert csr_enabled()
            assert not csr_enabled()
        assert csr_enabled()

    def test_none_is_a_no_op_scope(self):
        with use_csr(False):
            with use_csr(None):
                assert not csr_enabled()

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_csr(False):
                raise RuntimeError("boom")
        assert csr_enabled()
