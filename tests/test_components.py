"""Tests for the sequential connectivity reference and structural queries."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    bfs_distances,
    canonical_labels,
    component_count,
    component_sizes,
    components_agree,
    connected_components,
    cycle_graph,
    diameter,
    grid_graph,
    is_component_partition,
    path_graph,
    permutation_regular_graph,
    planted_expander_components,
    spanning_forest_is_valid,
    star_graph,
)


class TestConnectedComponents:
    def test_two_components(self):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        labels = connected_components(g)
        assert labels.tolist() == [0, 0, 0, 1, 1]

    def test_isolated_vertices(self):
        g = Graph(3, [])
        assert connected_components(g).tolist() == [0, 1, 2]

    def test_self_loops_ignored_for_connectivity(self):
        g = Graph(2, [(0, 0)])
        assert component_count(g) == 2

    def test_planted_components_recovered(self):
        g, truth = planted_expander_components([10, 20, 30], 8, rng=0)
        assert components_agree(connected_components(g), truth)

    def test_empty_graph(self):
        assert connected_components(Graph(0, [])).size == 0
        assert component_count(Graph(0, [])) == 0


class TestLabelHelpers:
    def test_canonical_labels_first_seen_order(self):
        assert canonical_labels(np.array([7, 7, 3, 3, 7])).tolist() == [0, 0, 1, 1, 0]

    def test_component_sizes(self):
        assert component_sizes(np.array([0, 0, 1])).tolist() == [2, 1]
        assert component_sizes(np.array([], dtype=np.int64)).size == 0

    def test_components_agree_modulo_names(self):
        assert components_agree(np.array([5, 5, 9]), np.array([0, 0, 1]))
        assert not components_agree(np.array([0, 1, 1]), np.array([0, 0, 1]))

    def test_components_agree_shape_mismatch(self):
        assert not components_agree(np.array([0]), np.array([0, 1]))


class TestComponentPartition:
    def test_true_components_are_partition(self):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        assert is_component_partition(g, connected_components(g))

    def test_refinement_is_partition(self):
        # Splitting a component into connected halves is still a
        # component-partition (Section 2).
        g = path_graph(6)
        labels = np.array([0, 0, 0, 1, 1, 1])
        assert is_component_partition(g, labels)

    def test_disconnected_part_rejected(self):
        g = path_graph(6)
        labels = np.array([0, 1, 0, 1, 0, 1])  # classes induce no edges
        assert not is_component_partition(g, labels)

    def test_cross_component_class_rejected(self):
        g = Graph(4, [(0, 1), (2, 3)])
        labels = np.array([0, 0, 0, 0])
        assert not is_component_partition(g, labels)

    def test_wrong_shape_rejected(self):
        g = path_graph(3)
        assert not is_component_partition(g, np.array([0, 0]))


class TestBfsAndDiameter:
    def test_bfs_path(self):
        g = path_graph(5)
        assert bfs_distances(g, 0).tolist() == [0, 1, 2, 3, 4]

    def test_bfs_unreachable(self):
        g = Graph(3, [(0, 1)])
        assert bfs_distances(g, 0).tolist() == [0, 1, -1]

    def test_diameter_cycle(self):
        assert diameter(cycle_graph(10)) == 5

    def test_diameter_path(self):
        assert diameter(path_graph(7)) == 6

    def test_diameter_star(self):
        assert diameter(star_graph(10)) == 2

    def test_diameter_grid(self):
        assert diameter(grid_graph(4, 5)) == 3 + 4

    def test_diameter_disconnected_raises(self):
        with pytest.raises(ValueError):
            diameter(Graph(3, [(0, 1)]))

    def test_double_sweep_matches_exact_on_expander(self):
        g = permutation_regular_graph(500, 8, rng=1)
        exact = diameter(g, exact_threshold=600)
        approx = diameter(g, exact_threshold=10, rng=0)
        assert approx == exact


class TestSpanningForest:
    def test_valid_tree(self):
        g = cycle_graph(5)
        tree = np.array([(0, 1), (1, 2), (2, 3), (3, 4)])
        assert spanning_forest_is_valid(g, tree)

    def test_cycle_rejected(self):
        g = cycle_graph(4)
        tree = g.edges
        assert not spanning_forest_is_valid(g, tree)

    def test_incomplete_rejected(self):
        g = path_graph(4)
        assert not spanning_forest_is_valid(g, np.array([(0, 1)]))

    def test_nonedge_rejected(self):
        g = path_graph(4)
        tree = np.array([(0, 1), (1, 2), (0, 3)])
        assert not spanning_forest_is_valid(g, tree)

    def test_forest_for_disconnected(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert spanning_forest_is_valid(g, np.array([(0, 1), (2, 3)]))
