"""Tests for the replacement product (Section 4, Appendix C)."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    canonical_labels,
    complete_graph,
    component_count,
    components_agree,
    connected_components,
    cycle_graph,
    dumbbell_graph,
    paper_random_graph,
    path_graph,
    permutation_regular_graph,
    spectral_gap,
    star_graph,
    two_sided_spectral_gap,
)
from repro.mpc import MPCEngine
from repro.products import (
    regular_graph_construction,
    replacement_product,
    zigzag_product,
)


def clouds_for(graph, d=4, seed=0):
    degrees = np.unique(np.asarray(graph.degrees)).tolist()
    return regular_graph_construction(degrees, d, rng=seed)


class TestStructure:
    def test_vertex_count_is_2m(self):
        g = paper_random_graph(30, 6, rng=0)
        rp = replacement_product(g, clouds_for(g))
        assert rp.graph.n == 2 * g.m

    def test_regularity_d_plus_one(self):
        g = paper_random_graph(30, 6, rng=1)
        rp = replacement_product(g, clouds_for(g, d=4))
        assert rp.graph.is_regular(5)

    def test_star_graph_hub_replaced(self):
        # The star is the paper's canonical "hub" example: its center has
        # degree n-1 and must become a cloud of n-1 vertices.
        g = star_graph(20)
        rp = replacement_product(g, clouds_for(g, d=4))
        assert rp.graph.n == 2 * g.m
        assert rp.graph.is_regular(5)
        hub_cloud = np.flatnonzero(rp.cloud_of == 0)
        assert hub_cloud.size == 19

    def test_cloud_of_port_of_consistent(self):
        g = cycle_graph(6)
        rp = replacement_product(g, clouds_for(g, d=4))
        degrees = np.asarray(g.degrees)
        for pv in range(rp.graph.n):
            v = rp.cloud_of[pv]
            assert 0 <= rp.port_of[pv] < degrees[v]

    def test_self_loop_in_base(self):
        g = Graph(2, [(0, 0), (0, 1)])
        rp = replacement_product(g, clouds_for(g, d=4))
        assert rp.graph.n == 2 * g.m
        assert rp.graph.is_regular(5)
        assert component_count(rp.graph) == 1

    def test_parallel_edges_in_base(self):
        g = Graph(2, [(0, 1), (0, 1), (0, 1)])
        rp = replacement_product(g, clouds_for(g, d=4))
        assert rp.graph.n == 6
        assert rp.graph.is_regular(5)


class TestComponentCorrespondence:
    def test_components_preserved(self):
        # Lemma 4.1 part 2: one-to-one correspondence of components.
        g = Graph(8, [(0, 1), (1, 2), (2, 0), (3, 4), (5, 6), (6, 7), (5, 7)])
        rp = replacement_product(g, clouds_for(g, d=4))
        product_labels = connected_components(rp.graph)
        assert int(product_labels.max()) == int(connected_components(g).max())

    def test_project_labels_recovers_base_components(self):
        g = Graph(8, [(0, 1), (1, 2), (2, 0), (3, 4), (5, 6), (6, 7), (5, 7)])
        rp = replacement_product(g, clouds_for(g, d=4))
        projected = rp.project_labels(connected_components(rp.graph))
        assert components_agree(projected, connected_components(g))

    def test_project_labels_shape_check(self):
        g = cycle_graph(4)
        rp = replacement_product(g, clouds_for(g, d=4))
        with pytest.raises(ValueError):
            rp.project_labels(np.zeros(3))


class TestSpectralGapPreservation:
    def test_proposition_4_2_inequality(self):
        """λ₂(G r H) ≥ (1/6)·(d²/(d+1)³)·λ_G·λ_H² (the explicit constant
        from the Appendix C proof, with λ_H the two-sided cloud gap that
        the Prop. C.4 decomposition requires)."""
        d = 6
        for seed, base in enumerate(
            [
                permutation_regular_graph(40, 6, rng=0),
                paper_random_graph(40, 8, rng=1),
                complete_graph(12),
            ]
        ):
            clouds = regular_graph_construction(
                np.unique(np.asarray(base.degrees)).tolist(), d, rng=seed
            )
            lam_g = spectral_gap(base)
            lam_h = min(two_sided_spectral_gap(c) for c in clouds.values())
            rp = replacement_product(base, clouds)
            bound = (d**2 / (d + 1) ** 3) * lam_g * lam_h**2 / 6
            assert spectral_gap(rp.graph) >= bound

    def test_gap_ordering_tracks_base(self):
        """Better-connected bases give better-connected products."""
        d = 4
        weak = dumbbell_graph(20, 6, bridges=1, rng=0)
        strong = permutation_regular_graph(40, 8, rng=0)
        gaps = {}
        for name, base in [("weak", weak), ("strong", strong)]:
            clouds = clouds_for(base, d=d, seed=3)
            rp = replacement_product(base, clouds)
            gaps[name] = spectral_gap(rp.graph)
        assert gaps["weak"] < gaps["strong"]


class TestValidation:
    def test_isolated_vertex_rejected(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError, match="isolated"):
            replacement_product(g, clouds_for(path_graph(2), d=4))

    def test_missing_cloud_rejected(self):
        g = path_graph(3)  # degrees 1 and 2
        clouds = regular_graph_construction([1], 4, rng=0)
        with pytest.raises(ValueError, match="no cloud"):
            replacement_product(g, clouds)

    def test_wrong_cloud_size_rejected(self):
        g = cycle_graph(4)  # all degree 2
        bad = regular_graph_construction([3], 4, rng=0)
        with pytest.raises(ValueError):
            replacement_product(g, {2: bad[3]})

    def test_irregular_cloud_rejected(self):
        g = cycle_graph(4)
        with pytest.raises(ValueError, match="not regular"):
            replacement_product(g, {2: Graph(2, [(0, 1)] * 3 + [(0, 0)])})


class TestEngineCharges:
    def test_rounds_charged(self):
        g = paper_random_graph(40, 6, rng=0)
        engine = MPCEngine(32)
        replacement_product(g, clouds_for(g), engine=engine)
        assert engine.rounds >= 2
        assert any("ReplacementProduct" in p.name for p in engine.phase_summaries())


class TestZigZag:
    def test_regularity_d_squared(self):
        g = cycle_graph(8)
        zz = zigzag_product(g, clouds_for(g, d=4))
        assert zz.graph.is_regular(16)
        assert zz.graph.n == 2 * g.m

    def test_proposition_c1_inequality(self):
        """λ₂(G z H) ≥ λ_G · λ_H² (Proposition C.1, with the two-sided
        cloud gap required by the Prop. C.4 decomposition)."""
        d = 6
        base = permutation_regular_graph(30, 6, rng=4)
        clouds = regular_graph_construction(
            np.unique(np.asarray(base.degrees)).tolist(), d, rng=4
        )
        lam_g = spectral_gap(base)
        lam_h = min(two_sided_spectral_gap(c) for c in clouds.values())
        zz = zigzag_product(base, clouds)
        assert spectral_gap(zz.graph) >= lam_g * lam_h**2 - 1e-9

    def test_zigzag_preserves_components(self):
        g = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        zz = zigzag_product(g, clouds_for(g, d=4))
        assert int(connected_components(zz.graph).max()) == 1
