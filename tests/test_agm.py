"""Tests for the AGM connectivity sketch (Proposition 8.1)."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    community_graph,
    components_agree,
    connected_components,
    cycle_graph,
    paper_random_graph,
    path_graph,
    permutation_regular_graph,
    planted_expander_components,
    star_graph,
)
from repro.sketch import AGMSketch, agm_connected_components


class TestDecodingCorrectness:
    def test_single_edge(self):
        g = Graph(2, [(0, 1)])
        labels, _ = agm_connected_components(g, rng=0)
        assert labels[0] == labels[1]

    def test_path(self):
        g = path_graph(20)
        labels, _ = agm_connected_components(g, rng=1)
        assert np.all(labels == 0)

    def test_cycle(self):
        g = cycle_graph(30)
        labels, _ = agm_connected_components(g, rng=2)
        assert np.all(labels == 0)

    def test_star(self):
        g = star_graph(40)
        labels, _ = agm_connected_components(g, rng=3)
        assert np.all(labels == 0)

    def test_two_components(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        labels, _ = agm_connected_components(g, rng=4)
        assert components_agree(labels, connected_components(g))

    def test_isolated_vertices(self):
        g = Graph(5, [(0, 1)])
        labels, _ = agm_connected_components(g, rng=5)
        assert components_agree(labels, connected_components(g))

    def test_empty_graph(self):
        g = Graph(4, [])
        labels, _ = agm_connected_components(g, rng=6)
        assert np.array_equal(labels, np.arange(4))

    def test_self_loops_and_multiedges(self):
        g = Graph(3, [(0, 0), (0, 1), (0, 1), (1, 2)])
        labels, _ = agm_connected_components(g, rng=7)
        assert np.all(labels == 0)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_exact(self, seed):
        g = paper_random_graph(80, 4, rng=seed)
        labels, _ = agm_connected_components(g, rng=seed)
        assert components_agree(labels, connected_components(g))

    @pytest.mark.parametrize("seed", range(4))
    def test_planted_components_exact(self, seed):
        g, _ = planted_expander_components([20, 35, 15], 6, rng=seed)
        labels, _ = agm_connected_components(g, rng=seed + 100)
        assert components_agree(labels, connected_components(g))

    def test_community_graph_exact(self):
        g, _ = community_graph([30, 20, 10], 6, rng=8)
        labels, _ = agm_connected_components(g, rng=8)
        assert components_agree(labels, connected_components(g))


class TestSketchProperties:
    def test_prebuilt_sketch_reusable(self):
        g = permutation_regular_graph(40, 6, rng=9)
        sketch = AGMSketch.from_graph(g, rng=9)
        labels, returned = agm_connected_components(g, rng=9, sketch=sketch)
        assert returned is sketch
        assert np.all(labels == 0)

    def test_words_per_vertex_polylog(self):
        """Message size grows polylogarithmically in n (Prop. 8.1's
        O(log³ n) bits)."""
        small = AGMSketch.from_graph(cycle_graph(32), rng=0).words_per_vertex()
        large = AGMSketch.from_graph(cycle_graph(1024), rng=0).words_per_vertex()
        # n grew 32x; words should grow by far less (levels+rounds only).
        assert large < 4 * small

    def test_words_follow_polylog_formula(self):
        """words/vertex = rounds · 3 · levels · rows · cols — quadratic in
        log n with our constant rows/cols, i.e. O(log³ n) bits."""
        n = 256
        sketch = AGMSketch.from_graph(cycle_graph(n), rng=0)
        levels, rows, cols = sketch.rounds[0].shape
        expected = len(sketch.rounds) * 3 * levels * rows * cols
        assert sketch.words_per_vertex() == expected
        assert levels == int(np.ceil(np.log2(n * n))) + 1

    def test_universe_limit_enforced(self):
        # n^2 must stay below the hash field size.
        with pytest.raises(ValueError, match="universe"):
            AGMSketch.from_graph(Graph(50_000, [(0, 1)]), rng=0)

    def test_round_count_default(self):
        g = cycle_graph(64)
        sketch = AGMSketch.from_graph(g, rng=1)
        assert len(sketch.rounds) >= int(np.log2(64))


class TestLinearityAtGraphLevel:
    def test_component_sums_cancel_internal_edges(self):
        """The summed sketch of a full component decodes no cut edge
        (its incidence vector is identically zero)."""
        from repro.sketch.agm import _sample_cut_edges

        g = permutation_regular_graph(30, 6, rng=10)
        sketch = AGMSketch.from_graph(g, rng=10)
        whole = np.zeros(30, dtype=np.int64)  # everything in one component
        samples = _sample_cut_edges(sketch.rounds[0], whole)
        assert samples == {}

    def test_split_component_decodes_cut_edge(self):
        from repro.sketch.agm import _sample_cut_edges

        g = path_graph(10)
        sketch = AGMSketch.from_graph(g, rng=11)
        labels = np.array([0] * 5 + [1] * 5)
        samples = _sample_cut_edges(sketch.rounds[0], labels)
        assert set(samples) == {0, 1}
        for u, v in samples.values():
            assert {u, v} == {4, 5}  # the only cut edge
