"""Tests for the AGM connectivity sketch (Proposition 8.1)."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    community_graph,
    components_agree,
    connected_components,
    cycle_graph,
    paper_random_graph,
    path_graph,
    permutation_regular_graph,
    planted_expander_components,
    star_graph,
)
from repro.sketch import AGMSketch, agm_connected_components


class TestDecodingCorrectness:
    def test_single_edge(self):
        g = Graph(2, [(0, 1)])
        labels, _ = agm_connected_components(g, rng=0)
        assert labels[0] == labels[1]

    def test_path(self):
        g = path_graph(20)
        labels, _ = agm_connected_components(g, rng=1)
        assert np.all(labels == 0)

    def test_cycle(self):
        g = cycle_graph(30)
        labels, _ = agm_connected_components(g, rng=2)
        assert np.all(labels == 0)

    def test_star(self):
        g = star_graph(40)
        labels, _ = agm_connected_components(g, rng=3)
        assert np.all(labels == 0)

    def test_two_components(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        labels, _ = agm_connected_components(g, rng=4)
        assert components_agree(labels, connected_components(g))

    def test_isolated_vertices(self):
        g = Graph(5, [(0, 1)])
        labels, _ = agm_connected_components(g, rng=5)
        assert components_agree(labels, connected_components(g))

    def test_empty_graph(self):
        g = Graph(4, [])
        labels, _ = agm_connected_components(g, rng=6)
        assert np.array_equal(labels, np.arange(4))

    def test_self_loops_and_multiedges(self):
        g = Graph(3, [(0, 0), (0, 1), (0, 1), (1, 2)])
        labels, _ = agm_connected_components(g, rng=7)
        assert np.all(labels == 0)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_exact(self, seed):
        g = paper_random_graph(80, 4, rng=seed)
        labels, _ = agm_connected_components(g, rng=seed)
        assert components_agree(labels, connected_components(g))

    @pytest.mark.parametrize("seed", range(4))
    def test_planted_components_exact(self, seed):
        g, _ = planted_expander_components([20, 35, 15], 6, rng=seed)
        labels, _ = agm_connected_components(g, rng=seed + 100)
        assert components_agree(labels, connected_components(g))

    def test_community_graph_exact(self):
        g, _ = community_graph([30, 20, 10], 6, rng=8)
        labels, _ = agm_connected_components(g, rng=8)
        assert components_agree(labels, connected_components(g))


class TestSketchProperties:
    def test_prebuilt_sketch_reusable(self):
        g = permutation_regular_graph(40, 6, rng=9)
        sketch = AGMSketch.from_graph(g, rng=9)
        labels, returned = agm_connected_components(g, rng=9, sketch=sketch)
        assert returned is sketch
        assert np.all(labels == 0)

    def test_words_per_vertex_polylog(self):
        """Message size grows polylogarithmically in n (Prop. 8.1's
        O(log³ n) bits)."""
        small = AGMSketch.from_graph(cycle_graph(32), rng=0).words_per_vertex()
        large = AGMSketch.from_graph(cycle_graph(1024), rng=0).words_per_vertex()
        # n grew 32x; words should grow by far less (levels+rounds only).
        assert large < 4 * small

    def test_words_follow_polylog_formula(self):
        """words/vertex = rounds · 3 · levels · rows · cols — quadratic in
        log n with our constant rows/cols, i.e. O(log³ n) bits."""
        n = 256
        sketch = AGMSketch.from_graph(cycle_graph(n), rng=0)
        levels, rows, cols = sketch.rounds[0].shape
        expected = len(sketch.rounds) * 3 * levels * rows * cols
        assert sketch.words_per_vertex() == expected
        assert levels == int(np.ceil(np.log2(n * n))) + 1

    def test_universe_limit_enforced(self):
        # n^2 must stay below the hash field size.
        with pytest.raises(ValueError, match="universe"):
            AGMSketch.from_graph(Graph(50_000, [(0, 1)]), rng=0)

    def test_round_count_default(self):
        g = cycle_graph(64)
        sketch = AGMSketch.from_graph(g, rng=1)
        assert len(sketch.rounds) >= int(np.log2(64))


class TestLinearityAtGraphLevel:
    def test_component_sums_cancel_internal_edges(self):
        """The summed sketch of a full component decodes no cut edge
        (its incidence vector is identically zero)."""
        from repro.sketch.agm import _sample_cut_edges

        g = permutation_regular_graph(30, 6, rng=10)
        sketch = AGMSketch.from_graph(g, rng=10)
        whole = np.zeros(30, dtype=np.int64)  # everything in one component
        samples = _sample_cut_edges(sketch.rounds[0], whole)
        assert samples == {}

    def test_split_component_decodes_cut_edge(self):
        from repro.sketch.agm import _sample_cut_edges

        g = path_graph(10)
        sketch = AGMSketch.from_graph(g, rng=11)
        labels = np.array([0] * 5 + [1] * 5)
        samples = _sample_cut_edges(sketch.rounds[0], labels)
        assert set(samples) == {0, 1}
        for u, v in samples.values():
            assert {u, v} == {4, 5}  # the only cut edge


class TestIncrementalUpdates:
    """The streaming entry point: signed updates are exact linear algebra."""

    def test_streamed_build_equals_one_shot(self):
        """Applying a graph's edges in batches must reproduce from_graph
        bit-for-bit (linearity)."""
        g = paper_random_graph(48, 4, rng=12)
        one_shot = AGMSketch.from_graph(g, rng=13)
        streamed = AGMSketch.empty(g.n, rng=13)
        thirds = np.array_split(g.edges, 3)
        for chunk in thirds:
            streamed.update_edges(chunk)
        for a, b in zip(one_shot.rounds, streamed.rounds):
            assert np.array_equal(a.totals, b.totals)
            assert np.array_equal(a.moments, b.moments)
            assert np.array_equal(a.fingers, b.fingers)

    def test_duplicate_insert_then_delete_is_exact_zero(self):
        """Parallel copies inserted then deleted must cancel every counter
        to exact zero — the invariant streaming deletes rely on."""
        sketch = AGMSketch.empty(8, rng=14)
        edges = np.array([[1, 5], [1, 5], [2, 3]], dtype=np.int64)
        sketch.update_edges(edges)
        sketch.update_edges(edges, -np.ones(3, dtype=np.int64))
        for r in sketch.rounds:
            assert not r.totals.any()
            assert not r.moments.any()
            assert not r.fingers.any()

    def test_delete_is_negated_insert(self):
        a = AGMSketch.empty(10, rng=15)
        b = AGMSketch.empty(10, rng=15)
        edges = np.array([[0, 7], [3, 4]], dtype=np.int64)
        a.update_edges(edges, np.array([2, -1], dtype=np.int64))
        b.update_edges(edges, np.array([-2, 1], dtype=np.int64))
        for ra, rb in zip(a.rounds, b.rounds):
            assert np.array_equal(ra.totals, -rb.totals)
            assert np.array_equal(ra.moments, -rb.moments)

    def test_decode_after_streamed_deletes(self):
        """Split a path by deleting its middle edge via a -1 update."""
        g = path_graph(12)
        sketch = AGMSketch.from_graph(g, rng=16)
        sketch.update_edges(np.array([[5, 6]]), np.array([-1], dtype=np.int64))
        from repro.sketch import agm_decode_components

        labels = agm_decode_components(sketch)
        assert labels[5] != labels[6]
        assert np.all(labels[:6] == labels[0])
        assert np.all(labels[6:] == labels[6])

    def test_update_validation(self):
        sketch = AGMSketch.empty(4, rng=17)
        with pytest.raises(ValueError, match="out of range"):
            sketch.update_edges(np.array([[0, 4]]))
        with pytest.raises(ValueError, match="weights shape"):
            sketch.rounds[0].update_edges(
                np.array([[0, 1]]), np.array([1, 1], dtype=np.int64)
            )

    def test_self_loops_and_zero_weights_ignored(self):
        sketch = AGMSketch.empty(6, rng=18)
        sketch.update_edges(
            np.array([[2, 2], [0, 1]]), np.array([5, 0], dtype=np.int64)
        )
        for r in sketch.rounds:
            assert not r.totals.any()


class TestBugfixRegressions:
    def test_deepest_level_wins_cut_edge_sampling(self):
        """Scanning from the end must keep the *deepest* level's decode;
        plain dict assignment used to let the shallowest overwrite it."""
        from repro.sketch.agm import RoundSketch, _sample_cut_edges
        from repro.sketch.hashing import MERSENNE_P, KWiseHash

        n, base = 4, 7
        shallow_id = 0 * n + 1   # edge (0, 1) decoded at level 0
        deep_id = 2 * n + 3      # edge (2, 3) decoded at level 1
        totals = np.zeros((n, 2, 1, 1), dtype=np.int64)
        moments = np.zeros_like(totals)
        fingers = np.zeros_like(totals)
        for level, edge_id in ((0, shallow_id), (1, deep_id)):
            totals[0, level, 0, 0] = 1
            moments[0, level, 0, 0] = edge_id
            fingers[0, level, 0, 0] = pow(base, edge_id, MERSENNE_P)
        sketch = RoundSketch(
            n=n, universe=n * n, level_hash=KWiseHash(2, 0),
            row_hashes=[KWiseHash(2, 1)], fingerprint_base=base,
            totals=totals, moments=moments, fingers=fingers,
        )
        samples = _sample_cut_edges(sketch, np.zeros(n, dtype=np.int64))
        assert samples == {0: (2, 3)}  # the deep edge, not the shallow one

    def test_int_seed_round_sketch_has_independent_row_hashes(self):
        """An int seed must be normalised once — every hash used to get
        identical coefficients from re-seeding."""
        from repro.sketch.agm import _empty_round_sketch

        sketch = _empty_round_sketch(32, rng=123, sparsity=4, rows=3)
        coeff_sets = [tuple(h.coefficients.tolist()) for h in sketch.row_hashes]
        coeff_sets.append(tuple(sketch.level_hash.coefficients.tolist()))
        assert len(set(coeff_sets)) == len(coeff_sets)

    def test_from_graph_reserves_verification_round(self):
        sketch = AGMSketch.from_graph(cycle_graph(16), rng=19, boruvka_rounds=5)
        assert len(sketch.rounds) == 6
        assert len(sketch.merge_rounds) == 5
        assert sketch.verification_round is sketch.rounds[-1]

    def test_verification_round_never_merged(self, monkeypatch):
        """The quiescence check must use a sketch no merge ever consumed."""
        import repro.sketch.agm as agm

        calls = []
        original = agm._sample_cut_edges

        def spy(round_sketch, labels):
            samples = original(round_sketch, labels)
            calls.append((round_sketch, bool(samples)))
            return samples

        monkeypatch.setattr(agm, "_sample_cut_edges", spy)
        g = path_graph(64)
        sketch = AGMSketch.from_graph(g, rng=20)
        labels, _ = agm_connected_components(g, rng=20, sketch=sketch)
        assert np.all(labels == 0)
        merge_sketches = {id(s) for s, produced in calls if produced}
        assert id(sketch.verification_round) not in merge_sketches

    def test_exhausted_rounds_verified_by_fresh_sketch(self, monkeypatch):
        """When merge rounds run out, the failure must be certified by the
        reserved verification sketch — queried exactly once, last."""
        import repro.sketch.agm as agm

        calls = []
        original = agm._sample_cut_edges

        def spy(round_sketch, labels):
            samples = original(round_sketch, labels)
            calls.append(round_sketch)
            return samples

        monkeypatch.setattr(agm, "_sample_cut_edges", spy)
        g = path_graph(64)
        sketch = AGMSketch.from_graph(g, rng=21, boruvka_rounds=2)
        with pytest.raises(RuntimeError, match="exhausted"):
            agm_connected_components(g, rng=21, sketch=sketch)
        assert calls[-1] is sketch.verification_round
        assert sum(1 for s in calls if s is sketch.verification_round) == 1
