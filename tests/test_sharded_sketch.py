"""Sharded AGM sketch: fused scatter, linearity merges, backend parity.

The load-bearing claims: the fused flat-index scatter is bit-identical
to the per-level/per-row reference loop; shard partials of any partition
of the update stream sum back to the monolithic sketch exactly (int64
wraparound addition is commutative and associative; fingerprints reduce
mod p at batch boundaries); and every ingest backend — in-process,
sharded, process-pool shm, rpc worker-resident — produces the same
merged sketch with the same accounting.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpc import (
    LocalBackend,
    ProcessBackend,
    RpcBackend,
    RpcWorkerError,
    ShardedBackend,
)
from repro.sketch import (
    MERSENNE_P,
    SKETCH_STATS_ZERO,
    AGMSketch,
    ShardedAGMSketch,
    SketchStats,
    agm_decode_components,
)
from repro.sketch.one_sparse import _pow_mod
from repro.sketch.sharded import SketchPartial

#: Small shape so hypothesis suites stay fast; both sides of every
#: comparison draw it from the same seed.
SMALL = dict(sparsity=2, rows=2, boruvka_rounds=2)

hyp_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _reference_round_update(sketch, edges, weights):
    """The pre-fusion per-level/per-row scatter, kept as the oracle."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    weights = np.asarray(weights, dtype=np.int64)
    u, v = edges[:, 0], edges[:, 1]
    keep = (u != v) & (weights != 0)
    if not keep.any():
        return
    u, v, w = u[keep], v[keep], weights[keep]
    lo, hi = np.minimum(u, v), np.maximum(u, v)
    edge_ids = lo * sketch.n + hi
    owners = np.concatenate([lo, hi])
    ids = np.concatenate([edge_ids, edge_ids])
    signed = np.concatenate([w, -w])
    levels, rows, cols = sketch.shape
    depth = sketch.level_hash.level(ids, levels - 1)
    powers = _pow_mod(
        np.full(ids.shape, sketch.fingerprint_base), ids, MERSENNE_P
    ).astype(np.int64)
    finger = ((signed % MERSENNE_P) * powers) % MERSENNE_P
    for i, hasher in enumerate(sketch.row_hashes):
        col = (hasher.values(ids) % np.uint64(cols)).astype(np.int64)
        for level in range(levels):
            active = depth >= level
            np.add.at(
                sketch.totals[:, level, i],
                (owners[active], col[active]),
                signed[active],
            )
            np.add.at(
                sketch.moments[:, level, i],
                (owners[active], col[active]),
                signed[active] * ids[active],
            )
            np.add.at(
                sketch.fingers[:, level, i],
                (owners[active], col[active]),
                finger[active],
            )
    sketch.fingers %= MERSENNE_P


def _sketches_equal(a: AGMSketch, b: AGMSketch) -> bool:
    return len(a.rounds) == len(b.rounds) and all(
        np.array_equal(x.totals, y.totals)
        and np.array_equal(x.moments, y.moments)
        and np.array_equal(x.fingers, y.fingers)
        for x, y in zip(a.rounds, b.rounds)
    )


def _random_batches(rng, n, batches=3, m=12):
    out = []
    for _ in range(batches):
        edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
        weights = rng.integers(-2, 3, size=m).astype(np.int64)
        out.append((edges, weights))
    return out


# -- fused scatter vs the reference loop -------------------------------------


def test_fused_scatter_matches_reference_loop():
    rng = np.random.default_rng(5)
    n = 24
    fused = AGMSketch.empty(n, 7, **SMALL)
    reference = AGMSketch.empty(n, 7, **SMALL)
    for edges, weights in _random_batches(rng, n, batches=4, m=20):
        fused.update_edges(edges, weights)
        for round_sketch in reference.rounds:
            _reference_round_update(round_sketch, edges, weights)
    assert _sketches_equal(fused, reference)


def test_fused_scatter_handles_self_loops_and_zero_weights():
    n = 10
    sketch = AGMSketch.empty(n, 3, **SMALL)
    sketch.update_edges(
        np.array([[1, 1], [2, 3]], dtype=np.int64),
        np.array([5, 0], dtype=np.int64),
    )
    for round_sketch in sketch.rounds:
        assert not round_sketch.totals.any()
        assert not round_sketch.fingers.any()


# -- in-process sharding -----------------------------------------------------


@pytest.mark.parametrize("shards", [1, 2, 5])
def test_sharded_merge_bit_identical(shards):
    rng = np.random.default_rng(11)
    n = 30
    mono = AGMSketch.empty(n, 13, **SMALL)
    sharded = ShardedAGMSketch.empty(n, 13, shards=shards, **SMALL)
    assert sharded.shard_count == shards
    for edges, weights in _random_batches(rng, n):
        mono.update_edges(edges, weights)
        sharded.update_edges(edges, weights)
    assert _sketches_equal(mono, sharded.merge())
    assert sharded.words_per_vertex() == mono.words_per_vertex()


def test_shard_count_capped_at_n():
    sharded = ShardedAGMSketch.empty(4, 1, shards=9, **SMALL)
    assert sharded.shard_count == 4
    assert sharded.shard_ranges == [(0, 1), (1, 2), (2, 3), (3, 4)]


def test_sharded_decode_matches_monolithic():
    n = 40
    edges = np.array(
        [[i, i + 1] for i in range(n // 2 - 1)]
        + [[i, i + 1] for i in range(n // 2, n - 1)],
        dtype=np.int64,
    )
    mono = AGMSketch.empty(n, 21)
    mono.update_edges(edges)
    sharded = ShardedAGMSketch.empty(n, 21, shards=3)
    sharded.update_edges(edges)
    assert np.array_equal(
        agm_decode_components(sharded.merge()), agm_decode_components(mono)
    )


def test_sharded_update_validates_like_monolithic():
    sharded = ShardedAGMSketch.empty(8, 1, shards=2, **SMALL)
    with pytest.raises(ValueError, match=r"out of range"):
        sharded.update_edges(np.array([[0, 8]], dtype=np.int64))
    with pytest.raises(ValueError, match=r"out of range"):
        sharded.update_edges(np.array([[-1, 2]], dtype=np.int64))
    with pytest.raises(ValueError, match=r"weights shape"):
        sharded.update_edges(
            np.array([[0, 1]], dtype=np.int64), np.array([1, 1], dtype=np.int64)
        )


# -- stats + store guards ----------------------------------------------------


def test_sketch_stats_schema_and_accounting():
    stats = SketchStats()
    assert stats.to_json() == dict(SKETCH_STATS_ZERO)
    sharded = ShardedAGMSketch.empty(12, 3, shards=3, stats=stats, **SMALL)
    expected_words = 3 * 3 * 12 * sharded._specs[0].cells  # rounds x planes x n
    assert stats.partial_words == expected_words
    sharded.update_edges(np.array([[0, 5], [6, 11]], dtype=np.int64))
    assert stats.shard_updates == 3
    sharded.merge()
    sharded.merge()
    assert stats.merges == 2
    assert set(stats.to_json()) == set(SKETCH_STATS_ZERO)


def test_resident_store_refuses_in_process_access():
    sharded = ShardedAGMSketch.empty(8, 1, shards=2, **SMALL)
    store = sharded._store
    store.kind = "resident"
    with pytest.raises(RuntimeError, match="resident"):
        store.apply_serial(
            np.array([[0, 1]], dtype=np.int64), np.array([1], dtype=np.int64)
        )
    with pytest.raises(RuntimeError, match="resident"):
        store.local_partial_data()


def test_partial_descriptor_requires_lease():
    part = SketchPartial(0, 4, np.zeros((1, 3, 4, 2), dtype=np.int64))
    with pytest.raises(RuntimeError, match="lease"):
        part.descriptor
    part.release()  # idempotent without a lease
    assert part.data is None


# -- hypothesis: the linearity monoid ----------------------------------------


def _batches_strategy(n, max_batches=3, max_edges=8):
    edge = st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))
    batch = st.lists(
        st.tuples(edge, st.integers(-2, 2)), min_size=1, max_size=max_edges
    )
    return st.lists(batch, min_size=1, max_size=max_batches)


def _as_arrays(batch):
    edges = np.array([e for e, _ in batch], dtype=np.int64).reshape(-1, 2)
    weights = np.array([w for _, w in batch], dtype=np.int64)
    return edges, weights


@hyp_settings
@given(data=st.data())
def test_partition_of_stream_sums_to_monolith_any_order(data):
    n = data.draw(st.integers(4, 16))
    shards = data.draw(st.integers(1, 4))
    batches = data.draw(_batches_strategy(n))
    order = data.draw(st.permutations(range(len(batches))))

    mono = AGMSketch.empty(n, 17, **SMALL)
    for batch in batches:
        mono.update_edges(*_as_arrays(batch))

    # Each batch goes to its own sharded sketch (same seed => same spec);
    # folding the per-shard partial blocks in ANY batch order must
    # reproduce the monolith bit-for-bit.
    pieces = []
    for batch in batches:
        piece = ShardedAGMSketch.empty(n, 17, shards=shards, **SMALL)
        piece.update_edges(*_as_arrays(batch))
        pieces.append(piece)
    total = pieces[order[0]]
    for index in order[1:]:
        for mine, theirs in zip(
            total._store.partials, pieces[index]._store.partials
        ):
            mine.data = ShardedAGMSketch.sum_partials(mine.data, theirs.data)
    assert _sketches_equal(mono, total.merge())


@hyp_settings
@given(data=st.data())
def test_sum_partials_commutative_associative(data):
    n = data.draw(st.integers(4, 12))
    blocks = []
    for salt in range(3):
        sk = ShardedAGMSketch.empty(n, 19, shards=1, **SMALL)
        batch = data.draw(_batches_strategy(n, max_batches=1))[0]
        sk.update_edges(*_as_arrays(batch))
        blocks.append(sk._store.partials[0].data)
    a, b, c = blocks
    fold = ShardedAGMSketch.sum_partials
    assert np.array_equal(fold(a, b), fold(b, a))
    assert np.array_equal(fold(fold(a, b), c), fold(a, fold(b, c)))


@hyp_settings
@given(data=st.data())
def test_insert_then_delete_across_shards_cancels_to_zero(data):
    n = data.draw(st.integers(4, 16))
    shards = data.draw(st.integers(1, 4))
    batch = data.draw(_batches_strategy(n, max_batches=1, max_edges=10))[0]
    edges, weights = _as_arrays(batch)
    split = data.draw(st.integers(0, edges.shape[0]))

    sharded = ShardedAGMSketch.empty(n, 23, shards=shards, **SMALL)
    sharded.update_edges(edges, weights)
    # Delete in two chunks, reversed order — linearity doesn't care.
    for sl in (slice(split, None), slice(None, split)):
        if edges[sl].size:
            sharded.update_edges(edges[sl], -weights[sl])
    merged = sharded.merge()
    for round_sketch in merged.rounds:
        assert not round_sketch.totals.any()
        assert not round_sketch.moments.any()
        assert not round_sketch.fingers.any()


# -- backend parity ----------------------------------------------------------


def _make_backend(name):
    if name == "local":
        return LocalBackend()
    if name == "sharded":
        return ShardedBackend()
    if name == "process":
        return ProcessBackend(workers=2, min_parallel_items=0)
    if name == "rpc":
        return RpcBackend(workers=2, min_wire_items=0)
    raise AssertionError(name)


@pytest.mark.parametrize("name", ["local", "sharded", "process", "rpc"])
def test_backend_ingest_bit_identical_and_counted(name):
    rng = np.random.default_rng(31)
    n = 26
    mono = AGMSketch.empty(n, 37, **SMALL)
    backend = _make_backend(name)
    try:
        sharded = ShardedAGMSketch.empty(
            n, 37, shards=2, backend=backend, **SMALL
        )
        for edges, weights in _random_batches(rng, n):
            mono.update_edges(edges, weights)
            sharded.update_edges(edges, weights)
        merged = sharded.merge()
        assert _sketches_equal(mono, merged)
        counts = backend.stats().op_counts
        assert counts["sketch_update"] == 3
        assert counts["sketch_collect"] == 1
        sharded.close()
        assert backend.stats().op_counts.get("sketch_release", 0) == 1
    finally:
        backend.close()


def test_rpc_pool_restart_makes_partial_loss_loud():
    backend = RpcBackend(workers=2, min_wire_items=0)
    try:
        sharded = ShardedAGMSketch.empty(10, 41, shards=2, backend=backend)
        sharded.update_edges(np.array([[0, 9]], dtype=np.int64))
        backend.close()  # drops the worker-resident partials
        with pytest.raises(RpcWorkerError, match="pool restart"):
            sharded.update_edges(np.array([[1, 2]], dtype=np.int64))
        with pytest.raises(RpcWorkerError, match="pool restart"):
            sharded.merge()
        sharded.close()  # must not raise on a lost pool
    finally:
        backend.close()
