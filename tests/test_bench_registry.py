"""Registry: registration, dedup, lookup, filtering."""

import pytest

from repro import bench


def _dummy(ctx):
    ctx.record("only", row=["only"], value_rounds=1)


def _make(name):
    return bench.register_benchmark(
        name,
        title="dummy",
        headers=["h"],
        smoke={"seed": 0},
        full={"seed": 0},
    )(_dummy)


@pytest.fixture
def temp_case():
    name = "zz_test_registry_case"
    _make(name)
    yield name
    bench.unregister_benchmark(name)


def test_registration_and_lookup(temp_case):
    spec = bench.get_benchmark(temp_case)
    assert spec.name == temp_case
    assert spec.func is _dummy
    assert spec.headers == ("h",)
    assert spec.params_for("smoke") == {"seed": 0}


def test_duplicate_name_rejected(temp_case):
    with pytest.raises(ValueError, match="already registered"):
        _make(temp_case)


def test_unknown_suite_rejected(temp_case):
    spec = bench.get_benchmark(temp_case)
    with pytest.raises(KeyError, match="no 'nightly' suite"):
        spec.params_for("nightly")


def test_unknown_name_rejected():
    with pytest.raises(KeyError, match="unknown benchmark"):
        bench.get_benchmark("zz_does_not_exist")


def test_params_are_copies(temp_case):
    spec = bench.get_benchmark(temp_case)
    spec.params_for("smoke")["seed"] = 99
    assert spec.params_for("smoke") == {"seed": 0}


def test_iter_benchmarks_filters(temp_case):
    names = [s.name for s in bench.iter_benchmarks(["zz_test_registry"])]
    assert names == [temp_case]
    assert bench.iter_benchmarks(["zz_no_such_prefix"]) == []


def test_all_sixteen_experiments_registered():
    bench.load_experiments()
    names = bench.registered_names()
    for i in range(1, 17):
        prefix = f"e{i:02d}"
        assert any(n.startswith(prefix) for n in names), prefix
    # Every registered case declares both suites.
    for spec in bench.iter_benchmarks():
        assert set(spec.suites) == {"smoke", "full"}, spec.name
