#!/usr/bin/env python3
"""Trace capture + replay smoke gate (CI's differential job).

Runs the full pipeline once with ``MPCEngine(trace=...)`` on a capture
backend, then replays the recorded plan stream on each replay backend
and asserts bit-identical outputs and matching exchange counters — the
same check ``python -m repro.mpc.plan`` performs, packaged as a script
so the CI step avoids the ``runpy`` re-import warning.

Usage::

    python tools/trace_replay_smoke.py --n 512 \
        --capture sharded --replay local process

``--engine NAME`` captures any registered connectivity engine's plan
stream instead of the paper pipeline's; ``--out PATH`` keeps the trace
file (CI uploads it as an artifact).
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.mpc.plan import _smoke  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(_smoke())
