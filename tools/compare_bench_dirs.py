#!/usr/bin/env python3
"""Regression-gate a directory of fresh ``BENCH_*.json`` artifacts.

Every committed artifact (in the baseline directory, normally the repo
root) is diffed against the same-named file in the freshly generated
directory with :func:`repro.bench.report.compare_bench_files` — the same
counter gates as ``python -m repro.bench --compare``, looped over the
whole artifact set and rendered as readable per-benchmark tables.  Any
``*rounds`` / ``*machines`` / ``*phases`` / ``*iterations`` /
``*exchanges`` / ``*shard_count`` / ``*shard_load`` / ``*segments`` /
``*barriers`` counter increase exits 1; wall-clock drift is only
flagged.  Fresh artifacts with no committed baseline are listed as new
(not a failure — commit them to arm the gate); committed artifacts the
fresh run did not produce fail, because a silently vanishing benchmark
is itself a regression.

Usage (CI's bench-smoke job)::

    python tools/compare_bench_dirs.py . bench-artifacts
"""

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.report import compare_bench_files, format_comparison  # noqa: E402


def main(argv: "list[str] | None" = None) -> int:
    """Diff every baseline ``BENCH_*.json`` against its fresh twin."""
    parser = argparse.ArgumentParser(
        prog="python tools/compare_bench_dirs.py",
        description="Loop python -m repro.bench --compare over two "
        "directories of BENCH_*.json artifacts.",
    )
    parser.add_argument("baseline", help="directory of committed artifacts")
    parser.add_argument("fresh", help="directory of freshly generated artifacts")
    args = parser.parse_args(argv)

    baseline = pathlib.Path(args.baseline)
    fresh = pathlib.Path(args.fresh)
    committed = sorted(baseline.glob("BENCH_*.json"))
    if not committed:
        print(f"no BENCH_*.json artifacts in {baseline}", file=sys.stderr)
        return 2

    failed, missing = [], []
    for old_path in committed:
        new_path = fresh / old_path.name
        if not new_path.exists():
            missing.append(old_path.name)
            continue
        try:
            diff = compare_bench_files(old_path, new_path)
        except (OSError, ValueError) as exc:
            print(f"cannot compare {old_path.name}: {exc}", file=sys.stderr)
            failed.append(old_path.name)
            continue
        print(format_comparison(diff))
        print()
        if not diff["ok"]:
            failed.append(old_path.name)

    new_names = sorted(
        p.name for p in fresh.glob("BENCH_*.json")
        if not (baseline / p.name).exists()
    )
    if new_names:
        print("new artifacts (no committed baseline yet): "
              + ", ".join(new_names))
    if missing:
        print(
            "MISSING from the fresh run (a vanished benchmark is a "
            "regression): " + ", ".join(missing),
            file=sys.stderr,
        )

    ok = not failed and not missing
    print(
        f"compared {len(committed) - len(missing)}/{len(committed)} "
        f"artifacts: {'OK' if ok else 'REGRESSED'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
