#!/usr/bin/env python3
"""Generate ``docs/api.md`` from the public docstrings of ``repro.mpc``,
``repro.core``, ``repro.engines``, ``repro.streaming``, and
``repro.service``.

The page is *derived*, never hand-edited: this script walks both
packages, collects every public class and function (module ``__all__``
when declared, else the non-underscore names defined in the module),
and renders their signatures and docstrings to markdown.  The CI docs
job re-runs the generator with ``--check`` and fails on any diff, so
the committed page cannot drift from the code — the same contract the
pydocstyle ``D1`` rules enforce on the docstrings themselves.

Usage::

    python tools/gen_api_docs.py            # (re)write docs/api.md
    python tools/gen_api_docs.py --check    # exit 1 if docs/api.md is stale

Stdlib + the package only; no documentation toolchain to install.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pathlib
import pkgutil
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "docs" / "api.md"

#: The packages whose public surface is documented (the same ones the
#: pydocstyle D1 rules gate in CI's docs job).
PACKAGES = (
    "repro.mpc",
    "repro.core",
    "repro.engines",
    "repro.streaming",
    "repro.service",
)

HEADER = """\
# API reference — `repro.mpc` + `repro.core` + `repro.engines` + `repro.streaming` + `repro.service`

> **Generated file — do not edit.**  Regenerate with
> `python tools/gen_api_docs.py`; CI fails if this page drifts from the
> docstrings it is built from.  For guides, see
> [architecture.md](architecture.md), [backends.md](backends.md),
> [engines.md](engines.md), [performance.md](performance.md), and
> [benchmarks.md](benchmarks.md).

This page lists every public class and function of the MPC simulator
(`repro.mpc`: engine, execution backends, shared-memory arena, cluster),
the Theorem 4 pipeline stages (`repro.core`), the pluggable
connectivity engines (`repro.engines`), the streaming-update
subsystem (`repro.streaming`), and the long-lived connectivity
service (`repro.service`), with their signatures and docstrings
verbatim.
"""


def iter_modules(package_name: str):
    """Yield ``(name, module)`` for a package and its public submodules."""
    package = importlib.import_module(package_name)
    yield package_name, package
    for info in sorted(
        pkgutil.iter_modules(package.__path__), key=lambda i: i.name
    ):
        if info.name.startswith("_"):
            continue
        name = f"{package_name}.{info.name}"
        yield name, importlib.import_module(name)


def public_names(module) -> "list[str]":
    """The module's documented surface: ``__all__``, else defined names."""
    if hasattr(module, "__all__"):
        return sorted(module.__all__)
    names = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented where it is defined
        names.append(name)
    return sorted(names)


def signature_of(obj) -> str:
    """``inspect.signature`` rendered reproducibly (``(...)`` on failure)."""
    try:
        text = str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"
    # Callable defaults repr their memory address; strip it so the page
    # is byte-identical across runs (the --check gate depends on that).
    return re.sub(r" at 0x[0-9a-f]+", "", text)


def docstring_block(obj) -> str:
    """The object's full docstring as a fenced text block."""
    doc = inspect.getdoc(obj)
    if not doc:
        return "*(no docstring)*\n"
    return "```text\n" + doc.rstrip() + "\n```\n"


def render_entry(qualname: str, obj) -> "list[str]":
    """Markdown lines for one public class/function entry."""
    lines = []
    if inspect.isclass(obj):
        lines.append(f"### class `{qualname}{signature_of(obj)}`\n")
        lines.append(docstring_block(obj))
        for method_name, method in sorted(vars(obj).items()):
            if method_name.startswith("_"):
                continue
            if isinstance(method, property):
                lines.append(f"- **`{method_name}`** (property) — "
                             + summary_line(method.fget))
            elif inspect.isfunction(method) or isinstance(
                method, (classmethod, staticmethod)
            ):
                func = getattr(obj, method_name)
                lines.append(
                    f"- **`{method_name}{signature_of(func)}`** — "
                    + summary_line(func)
                )
        lines.append("")
    elif inspect.isfunction(obj):
        lines.append(f"### `{qualname}{signature_of(obj)}`\n")
        lines.append(docstring_block(obj))
    else:  # constants, dataclass instances, registries
        lines.append(f"### `{qualname}`\n")
        lines.append(docstring_block(obj))
    return lines


def summary_line(obj) -> str:
    """First docstring line (used for method bullets and the TOC)."""
    doc = inspect.getdoc(obj)
    if not doc:
        return "*(no docstring)*"
    return doc.strip().splitlines()[0]


def surface_check_block(qualnames: "list[str]") -> str:
    """The page's executable example: every documented name must resolve.

    ``tests/test_docs_examples.py`` executes this fence, so a rename that
    regenerates the page still fails the docs build if anything
    documented here stopped being importable.
    """
    lines = [
        "```python",
        "# Executable surface check: every name documented on this page",
        "# resolves (run by tests/test_docs_examples.py).",
        "import importlib",
        "",
        "NAMES = [",
    ]
    lines += [f'    "{name}",' for name in qualnames]
    lines += [
        "]",
        "for qualname in NAMES:",
        '    module, _, attr = qualname.rpartition(".")',
        "    assert hasattr(importlib.import_module(module), attr), qualname",
        "```",
        "",
    ]
    return "\n".join(lines)


def generate() -> str:
    """Render the full docs/api.md content as one string."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sections: "list[str]" = [HEADER]
    toc: "list[str]" = ["## Modules\n"]
    bodies: "list[str]" = []
    all_qualnames: "list[str]" = []

    for package_name in PACKAGES:
        for module_name, module in iter_modules(package_name):
            names = public_names(module)
            if not names:
                continue
            anchor = module_name.replace(".", "")
            toc.append(
                f"- [`{module_name}`](#{anchor}) — "
                + summary_line(module)
            )
            bodies.append(f'\n## `{module_name}` <a id="{anchor}"></a>\n')
            doc = inspect.getdoc(module)
            if doc:
                # First paragraph only: the full prose lives in the module.
                bodies.append(doc.split("\n\n")[0] + "\n")
            for name in names:
                obj = getattr(module, name)
                qualname = f"{module_name}.{name}"
                # Skip re-exports in package __init__ pages: they are
                # documented under their defining module.
                defined_in = getattr(obj, "__module__", module_name)
                if module_name in PACKAGES and defined_in != module_name:
                    all_qualnames.append(qualname)
                    continue
                all_qualnames.append(qualname)
                bodies.extend(render_entry(qualname, obj))

    sections.append("\n".join(toc) + "\n")
    sections.append(
        "\n## Import surface\n\n"
        + surface_check_block(sorted(set(all_qualnames)))
    )
    sections.extend(bodies)
    return "\n".join(sections).rstrip() + "\n"


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point: write docs/api.md, or --check it for drift."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if docs/api.md differs from the generated content",
    )
    args = parser.parse_args(argv)
    content = generate()
    if args.check:
        current = OUTPUT.read_text() if OUTPUT.exists() else ""
        if current != content:
            print(
                "docs/api.md is stale; regenerate with "
                "`python tools/gen_api_docs.py`",
                file=sys.stderr,
            )
            return 1
        print("docs/api.md is up to date")
        return 0
    OUTPUT.write_text(content)
    print(f"wrote {OUTPUT.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
